// Package sampling implements tail-based adaptive trace sampling: the
// keep/drop decision for a whole trace is made when its root span ends,
// with the full span tree in hand — so the sampler can always keep the
// traces worth debugging (errors, deadline expiries, load shedding,
// failovers, tail-latency outliers) while thinning routine traffic to a
// configurable kept-traces-per-second budget.
//
// Decisions are deterministic: the head-sampling coin is a splitmix64
// hash of the trace ID, the tail detector is a bounded per-operation
// rolling p95 over virtual-time durations, and the per-priority-band
// keep probabilities adapt by AIMD against the sim clock. Two runs of
// the same seeded scenario keep byte-identical trace sets.
//
// The sampler sits between a Tracer and its expensive sinks (Collector,
// JSONL): install it as the tracer's sink and register downstream sinks
// on it. Telemetry is unaffected — metrics probes observe every
// invocation whether or not its trace is kept, so aggregate series stay
// exact while span storage shrinks.
package sampling

import (
	"sort"
	"strconv"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/trace/telemetry"
)

// Verdict is the sampling decision for one trace.
type Verdict int

const (
	// VerdictPending means the trace's root span has not ended yet.
	VerdictPending Verdict = iota
	// VerdictDrop discards the trace (head coin lost, nothing notable).
	VerdictDrop
	// VerdictKeepError keeps a trace containing an error-class span:
	// an error attribute, an overload-layer span (deadline expiry,
	// breaker transition, shed), an FT-layer span (failover) or a
	// network drop.
	VerdictKeepError
	// VerdictKeepTail keeps a tail-latency outlier: the root duration
	// crossed the operation's rolling p95.
	VerdictKeepTail
	// VerdictKeepHead keeps a trace by the probabilistic head coin,
	// the budget-controlled representative sample.
	VerdictKeepHead
)

func (v Verdict) String() string {
	switch v {
	case VerdictPending:
		return "pending"
	case VerdictDrop:
		return "drop"
	case VerdictKeepError:
		return "keep_error"
	case VerdictKeepTail:
		return "keep_tail"
	case VerdictKeepHead:
		return "keep_head"
	default:
		return "Verdict(" + strconv.Itoa(int(v)) + ")"
	}
}

// Keep reports whether the verdict retains the trace.
func (v Verdict) Keep() bool { return v >= VerdictKeepError }

// Config tunes the sampler. The zero value is usable: keep everything
// notable, head-sample at 1.0 with no budget pressure.
type Config struct {
	// TargetPerSec is the kept-traces-per-second budget for head
	// sampling, per priority band. <= 0 disables adaptation (the head
	// probability stays at InitialProb).
	TargetPerSec float64
	// Adjust is the AIMD adjustment period (default 1s of virtual time).
	Adjust time.Duration
	// InitialProb is the starting head-sampling probability in (0, 1]
	// (default 1.0; any negative value disables head sampling, keeping
	// only error-class and tail-outlier traces).
	InitialProb float64
	// TailWindow bounds the per-operation duration ring used for the
	// rolling p95 (default 128 samples).
	TailWindow int
	// TailMin is the minimum observations of an operation before the
	// tail detector can fire (default 16), so cold starts don't keep
	// everything.
	TailMin int
	// BandOf maps a root span's priority to a band name sharing one
	// AIMD budget. Default: "low" below 50, "high" at or above.
	BandOf func(priority int64) string
	// AlwaysKeep overrides the error-class test. Default: error
	// attribute, overload layer, ft layer, or a netsim "drop" span.
	AlwaysKeep func(s *trace.Span) bool
}

// DefaultBandOf is the default priority banding: the RT-CORBA
// experiments escalate to priority 100, so < 50 is the best-effort band.
func DefaultBandOf(priority int64) string {
	if priority < 50 {
		return "low"
	}
	return "high"
}

// DefaultAlwaysKeep is the default error-class test.
func DefaultAlwaysKeep(s *trace.Span) bool {
	if s.Layer == trace.LayerOverload || s.Layer == trace.LayerFT {
		return true
	}
	if s.Layer == trace.LayerNetsim && s.Name == "drop" {
		return true
	}
	for _, a := range s.Attrs {
		if a.Key == "error" {
			return true
		}
	}
	return false
}

// Stats is the sampler's running tally.
type Stats struct {
	Traces    int // decided traces
	Kept      int
	Dropped   int
	KeepError int
	KeepTail  int
	KeepHead  int
	// LateSpans counts spans arriving after their trace was decided;
	// Resurrected counts dropped traces flipped to kept by a late
	// always-keep span (e.g. a deadline_expired marker emitted after
	// the invoke span ended).
	LateSpans   int
	Resurrected int
	// SpansKept / SpansDropped count span-level forwarding.
	SpansKept    int
	SpansDropped int
}

// tailEst is a bounded rolling-percentile estimator over one
// operation's root durations: a ring of the most recent TailWindow
// observations, p95 computed on demand from a sorted copy. Memory and
// decisions are bounded and deterministic.
type tailEst struct {
	ring []sim.Time
	next int
	full bool
}

func (t *tailEst) observe(d sim.Time, capN int) {
	if cap(t.ring) == 0 {
		t.ring = make([]sim.Time, 0, capN)
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, d)
		return
	}
	t.ring[t.next] = d
	t.next = (t.next + 1) % len(t.ring)
	t.full = true
}

func (t *tailEst) count() int { return len(t.ring) }

// p95 returns the rolling 95th percentile (nearest-rank on the ring).
func (t *tailEst) p95() sim.Time {
	n := len(t.ring)
	if n == 0 {
		return 0
	}
	sorted := append([]sim.Time(nil), t.ring...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (n*95 + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

// bandCtl is one priority band's AIMD head-probability controller.
type bandCtl struct {
	prob        float64
	kept        int
	periodStart sim.Time
}

// Sampler is the tail-based sampling sink. It buffers each trace's
// spans until the trace's root span ends, decides once, and forwards
// kept spans (in their original end order) to the downstream sinks.
// Spans ending after the decision — late reply hops, oneway dispatches
// — follow the cached verdict, except that a late always-keep span
// resurrects a dropped trace: the late span is forwarded and the
// verdict flips, so the error marker is never lost (the earlier spans
// of a resurrected trace are gone; the collector's effective-root
// fallback keeps the remnant queryable).
//
// Not safe for concurrent use; like the Tracer itself it lives on the
// simulation goroutine.
type Sampler struct {
	cfg   Config
	k     *sim.Kernel
	down  []trace.Sink
	reg   *telemetry.Registry
	stats Stats

	pending map[trace.TraceID][]*trace.Span
	decided map[trace.TraceID]Verdict
	tails   map[string]*tailEst
	bands   map[string]*bandCtl
	// order of first appearance, for deterministic iteration when
	// rendering debug state.
	bandOrder []string
}

var _ trace.Sink = (*Sampler)(nil)

// New creates a sampler on the kernel's virtual clock, forwarding kept
// spans to down.
func New(k *sim.Kernel, cfg Config, down ...trace.Sink) *Sampler {
	if cfg.Adjust <= 0 {
		cfg.Adjust = time.Second
	}
	if cfg.InitialProb == 0 {
		cfg.InitialProb = 1
	}
	if cfg.InitialProb < 0 { // explicit "head sampling off"
		cfg.InitialProb = 0
	}
	if cfg.InitialProb > 1 {
		cfg.InitialProb = 1
	}
	if cfg.TailWindow <= 0 {
		cfg.TailWindow = 128
	}
	if cfg.TailMin <= 0 {
		cfg.TailMin = 16
	}
	if cfg.BandOf == nil {
		cfg.BandOf = DefaultBandOf
	}
	if cfg.AlwaysKeep == nil {
		cfg.AlwaysKeep = DefaultAlwaysKeep
	}
	return &Sampler{
		cfg:     cfg,
		k:       k,
		down:    down,
		pending: make(map[trace.TraceID][]*trace.Span),
		decided: make(map[trace.TraceID]Verdict),
		tails:   make(map[string]*tailEst),
		bands:   make(map[string]*bandCtl),
	}
}

// AddSink attaches another downstream sink receiving kept spans.
func (sp *Sampler) AddSink(s trace.Sink) { sp.down = append(sp.down, s) }

// Instrument publishes sampling decisions into a telemetry registry:
// trace.sampler.decided{verdict=...} counters and a
// trace.sampler.head_prob{band=...} gauge — so the monitoring plane can
// watch the sampler hold its budget like any other series.
func (sp *Sampler) Instrument(reg *telemetry.Registry) *Sampler {
	sp.reg = reg
	return sp
}

func (sp *Sampler) record(v Verdict, band string) {
	if sp.reg == nil {
		return
	}
	sp.reg.Counter("trace.sampler.decided", telemetry.L("verdict", v.String())).Inc()
	if band != "" {
		sp.reg.Gauge("trace.sampler.head_prob", telemetry.L("band", band)).Set(sp.bands[band].prob)
	}
}

// Stats returns the running tally.
func (sp *Sampler) Stats() Stats { return sp.stats }

// Verdict returns the decision for a trace (VerdictPending while its
// root has not ended).
func (sp *Sampler) Verdict(id trace.TraceID) Verdict { return sp.decided[id] }

// HeadProb returns a band's current head-sampling probability
// (InitialProb if the band has not been seen yet).
func (sp *Sampler) HeadProb(band string) float64 {
	if b, ok := sp.bands[band]; ok {
		return b.prob
	}
	return sp.cfg.InitialProb
}

// OnEnd implements trace.Sink.
func (sp *Sampler) OnEnd(s *trace.Span) {
	if v, ok := sp.decided[s.TraceID]; ok {
		sp.stats.LateSpans++
		if !v.Keep() && sp.cfg.AlwaysKeep(s) {
			// Resurrection: an error-class span ended after its trace was
			// dropped. Keep it (and everything after) rather than lose the
			// marker.
			sp.decided[s.TraceID] = VerdictKeepError
			sp.stats.Resurrected++
			sp.stats.Kept++
			sp.stats.Dropped--
			sp.stats.KeepError++
			v = VerdictKeepError
			if sp.reg != nil {
				sp.reg.Counter("trace.sampler.resurrected").Inc()
			}
		}
		sp.deliver(s, v)
		return
	}
	if s.Parent == 0 {
		sp.decide(s)
		return
	}
	sp.pending[s.TraceID] = append(sp.pending[s.TraceID], s)
}

func (sp *Sampler) deliver(s *trace.Span, v Verdict) {
	if !v.Keep() {
		sp.stats.SpansDropped++
		return
	}
	sp.stats.SpansKept++
	for _, d := range sp.down {
		d.OnEnd(s)
	}
}

// priorityOf extracts the root span's integer priority attribute (0 if
// absent or malformed).
func priorityOf(s *trace.Span) int64 {
	for _, a := range s.Attrs {
		if a.Key == "priority" {
			if v, err := strconv.ParseInt(a.Val, 10, 64); err == nil {
				return v
			}
		}
	}
	return 0
}

// splitmix64 is the deterministic hash behind the head-sampling coin.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// coin maps a trace ID to a uniform float in [0, 1).
func coin(id trace.TraceID) float64 {
	return float64(splitmix64(uint64(id))>>11) / float64(1<<53)
}

func (sp *Sampler) band(name string) *bandCtl {
	b, ok := sp.bands[name]
	if !ok {
		b = &bandCtl{prob: sp.cfg.InitialProb, periodStart: sp.k.Now()}
		sp.bands[name] = b
		sp.bandOrder = append(sp.bandOrder, name)
	}
	return b
}

// adjust runs the AIMD step when the band's period elapsed: halve the
// head probability when the kept rate overshot the budget, add a fixed
// increment when under it.
func (sp *Sampler) adjust(b *bandCtl) {
	if sp.cfg.TargetPerSec <= 0 {
		return
	}
	now := sp.k.Now()
	elapsed := now - b.periodStart
	if elapsed < sim.Time(sp.cfg.Adjust) {
		return
	}
	rate := float64(b.kept) / elapsed.Seconds()
	if rate > sp.cfg.TargetPerSec {
		b.prob /= 2
		if b.prob < 1.0/1024 {
			b.prob = 1.0 / 1024
		}
	} else {
		b.prob += 0.1
		if b.prob > 1 {
			b.prob = 1
		}
	}
	b.kept = 0
	b.periodStart = now
}

// decide runs the verdict for a trace whose root just ended. Verdict
// precedence: error-class > tail outlier > head coin.
func (sp *Sampler) decide(root *trace.Span) {
	buffered := sp.pending[root.TraceID]
	delete(sp.pending, root.TraceID)

	v := VerdictDrop
	if sp.cfg.AlwaysKeep(root) {
		v = VerdictKeepError
	} else {
		for _, s := range buffered {
			if sp.cfg.AlwaysKeep(s) {
				v = VerdictKeepError
				break
			}
		}
	}

	// The tail estimator observes every root (kept or not) so the
	// rolling p95 tracks the true distribution, not the kept sample.
	est, ok := sp.tails[root.Name]
	if !ok {
		est = &tailEst{}
		sp.tails[root.Name] = est
	}
	dur := root.Duration()
	if v == VerdictDrop && est.count() >= sp.cfg.TailMin && dur > est.p95() {
		v = VerdictKeepTail
	}
	est.observe(dur, sp.cfg.TailWindow)

	b := sp.band(sp.cfg.BandOf(priorityOf(root)))
	sp.adjust(b)
	if v == VerdictDrop && coin(root.TraceID) < b.prob {
		v = VerdictKeepHead
	}

	sp.decided[root.TraceID] = v
	sp.stats.Traces++
	switch v {
	case VerdictKeepError:
		sp.stats.KeepError++
	case VerdictKeepTail:
		sp.stats.KeepTail++
	case VerdictKeepHead:
		sp.stats.KeepHead++
	}
	if v.Keep() {
		sp.stats.Kept++
		b.kept++
	} else {
		sp.stats.Dropped++
	}
	sp.record(v, sp.cfg.BandOf(priorityOf(root)))
	for _, s := range buffered {
		sp.deliver(s, v)
	}
	sp.deliver(root, v)
}

// FlushOpen decides every still-pending trace as if its root ended now:
// error-class content keeps it, everything else follows the head coin.
// Call after the scenario's tracer FlushOpen so end-of-run remnants are
// classified instead of leaking in the pending buffer.
func (sp *Sampler) FlushOpen() {
	ids := make([]trace.TraceID, 0, len(sp.pending))
	for id := range sp.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		buffered := sp.pending[id]
		delete(sp.pending, id)
		v := VerdictDrop
		for _, s := range buffered {
			if sp.cfg.AlwaysKeep(s) {
				v = VerdictKeepError
				break
			}
		}
		if v == VerdictDrop && coin(id) < sp.cfg.InitialProb {
			v = VerdictKeepHead
		}
		sp.decided[id] = v
		sp.stats.Traces++
		switch v {
		case VerdictKeepError:
			sp.stats.KeepError++
		case VerdictKeepHead:
			sp.stats.KeepHead++
		}
		if v.Keep() {
			sp.stats.Kept++
		} else {
			sp.stats.Dropped++
		}
		sp.record(v, "")
		for _, s := range buffered {
			sp.deliver(s, v)
		}
	}
}

// KeptTraceIDs returns the IDs of every kept trace, ascending — the
// deterministic fingerprint the determinism test compares across runs.
func (sp *Sampler) KeptTraceIDs() []trace.TraceID {
	out := make([]trace.TraceID, 0, len(sp.decided))
	for id, v := range sp.decided {
		if v.Keep() {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
