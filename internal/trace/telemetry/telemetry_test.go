package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestLabelOrderCanonicalized(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("orb.requests", L("op", "echo"), L("prio", "10"))
	b := r.Counter("orb.requests", L("prio", "10"), L("op", "echo"))
	if a != b {
		t.Fatal("label order created two instruments for the same series")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("value = %v, want 2", a.Value())
	}
	if c := r.Counter("orb.requests", L("op", "echo"), L("prio", "20")); c == a {
		t.Fatal("different label value mapped to the same instrument")
	}
}

func TestKeyOf(t *testing.T) {
	if got := keyOf("m", nil); got != "m" {
		t.Fatalf("unlabeled key = %q", got)
	}
	got := keyOf("m", []Label{{K: "z", V: "1"}, {K: "a", V: "2"}})
	if got != "m{a=2,z=1}" {
		t.Fatalf("key = %q, want m{a=2,z=1}", got)
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c").Add(-1)
}

func TestGaugeAndHistogram(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("quo.cond", L("cond", "fps"))
	g.Set(27.5)
	if g.Value() != 27.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("orb.rtt_ms", L("op", "echo"))
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	s := h.Summary()
	if s.Mean != 2.5 || s.P50 != 2.5 {
		t.Fatalf("summary mean/P50 = %v/%v, want 2.5/2.5", s.Mean, s.P50)
	}
}

func TestRenderSortedAndStable(t *testing.T) {
	r := NewRegistry()
	// Insert out of lexical order; rendering must sort.
	r.Counter("z.last").Inc()
	r.Counter("a.first").Add(3)
	r.Gauge("mid.gauge").Set(7)
	r.Histogram("h.lat", L("op", "x")).Observe(1.5)

	out := r.Render()
	if out != r.Render() {
		t.Fatal("Render not stable across calls")
	}
	if !strings.Contains(out, "Counters") || !strings.Contains(out, "Gauges") ||
		!strings.Contains(out, "Histograms") {
		t.Fatalf("missing sections:\n%s", out)
	}
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Fatalf("counters not sorted by key:\n%s", out)
	}
	if !strings.Contains(out, "h.lat{op=x}") {
		t.Fatalf("histogram key missing labels:\n%s", out)
	}
}

func TestRenderEmptyRegistry(t *testing.T) {
	if out := NewRegistry().Render(); out != "" {
		t.Fatalf("empty registry rendered %q", out)
	}
}

func TestGaugeAdd(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge after Add(3), Add(-1) = %v, want 2", g.Value())
	}
}

func TestKeyRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		labels []Label
	}{
		{"plain", nil},
		{"orb.rtt_ms", []Label{L("prio", "100"), L("op", "echo")}},
		{"pool.shed", []Label{L("reason", "deadline"), L("lane", "0")}},
	}
	for _, c := range cases {
		key := Key(c.name, c.labels...)
		name, labels := ParseKey(key)
		if name != c.name {
			t.Fatalf("ParseKey(%q) name = %q", key, name)
		}
		// Re-keying the parsed form must reproduce the canonical key:
		// canonical label ordering survives the sampling round trip.
		if got := Key(name, labels...); got != key {
			t.Fatalf("round trip %q -> %q", key, got)
		}
		for i := 1; i < len(labels); i++ {
			if labels[i-1].K >= labels[i].K {
				t.Fatalf("parsed labels not canonically ordered: %v", labels)
			}
		}
	}
}

func TestHistogramBoundedMemory(t *testing.T) {
	h := NewRegistry().Histogram("big")
	n := 3 * DefaultReservoirCap
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if got := len(h.Values()); got != DefaultReservoirCap {
		t.Fatalf("retained %d samples, want cap %d", got, DefaultReservoirCap)
	}
	s := h.Summary()
	if s.N != n {
		t.Fatalf("N = %d, want exact %d", s.N, n)
	}
	if s.Min != 0 || s.Max != float64(n-1) {
		t.Fatalf("min/max = %v/%v, want exact 0/%d", s.Min, s.Max, n-1)
	}
	wantMean := float64(n-1) / 2
	if s.Mean != wantMean {
		t.Fatalf("mean = %v, want exact %v", s.Mean, wantMean)
	}
	// Percentiles are sampled but must stay plausible on a uniform ramp.
	if s.P50 < 0.3*float64(n) || s.P50 > 0.7*float64(n) {
		t.Fatalf("sampled P50 = %v implausible for uniform ramp over [0,%d)", s.P50, n)
	}
}

func TestHistogramSmallRunsExact(t *testing.T) {
	// Below the reservoir cap, Summary must equal the exact computation
	// over every observation — the pre-reservoir behaviour.
	h := &Histogram{}
	vs := []float64{5, 1, 4, 2, 3, 9, 7}
	for _, v := range vs {
		h.Observe(v)
	}
	want := metrics.Summarize(vs)
	if got := h.Summary(); got != want {
		t.Fatalf("small-run summary %+v != exact %+v", got, want)
	}
}

func TestHistogramDeterministicReservoir(t *testing.T) {
	sample := func() []float64 {
		h := &Histogram{}
		for i := 0; i < 2*DefaultReservoirCap; i++ {
			h.Observe(float64(i))
		}
		return h.Values()
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoir diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHistogramTakeWindow(t *testing.T) {
	h := &Histogram{}
	h.Observe(1)
	h.Observe(3)
	w := h.TakeWindow()
	if w.N != 2 || w.Mean != 2 {
		t.Fatalf("window 1 = %+v, want N=2 mean=2", w)
	}
	h.Observe(10)
	w = h.TakeWindow()
	if w.N != 1 || w.Mean != 10 {
		t.Fatalf("window 2 = %+v, want N=1 mean=10", w)
	}
	if w = h.TakeWindow(); w.N != 0 {
		t.Fatalf("empty window = %+v, want N=0", w)
	}
	// Cumulative view is unaffected by window draining.
	if s := h.Summary(); s.N != 3 {
		t.Fatalf("cumulative N = %d, want 3", s.N)
	}
}

// TestRegistryConcurrentUse exercises concurrent Inc/Observe/Set/Render
// under -race: the exposition endpoint reads while probes write.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("reqs", L("op", "echo")).Inc()
				r.Gauge("depth", L("lane", "0")).Add(1)
				r.Histogram("rtt", L("prio", fmt.Sprint(g%2))).Observe(float64(i))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.Render()
			_ = r.Histogram("rtt", L("prio", "0")).TakeWindow()
		}
	}()
	wg.Wait()
	if got := r.Counter("reqs", L("op", "echo")).Value(); got != 2000 {
		t.Fatalf("counter = %v, want 2000", got)
	}
}

// TestHistogramExemplars pins exemplar semantics: max-value wins,
// first-seen wins exact ties, window exemplars drain independently of
// the cumulative one, and untagged observations never produce one.
func TestHistogramExemplars(t *testing.T) {
	h := &Histogram{}
	if _, ok := h.Exemplar(); ok {
		t.Fatal("empty histogram has an exemplar")
	}
	h.Observe(99) // untagged: affects the distribution, never the exemplar
	h.ObserveEx(10, Exemplar{TraceID: 1, SpanID: 1, At: time.Millisecond})
	h.ObserveEx(42, Exemplar{TraceID: 2, SpanID: 2, At: 2 * time.Millisecond})
	h.ObserveEx(42, Exemplar{TraceID: 3, SpanID: 3, At: 3 * time.Millisecond}) // tie: first wins
	h.ObserveEx(17, Exemplar{TraceID: 4, SpanID: 4, At: 4 * time.Millisecond})

	ex, ok := h.Exemplar()
	if !ok || ex.TraceID != 2 || ex.SpanID != 2 || ex.Value != 42 {
		t.Fatalf("cumulative exemplar = %+v ok=%v, want trace 2 value 42", ex, ok)
	}

	sum, wex, ok := h.TakeWindowEx()
	if sum.N != 5 {
		t.Fatalf("window N = %d, want 5", sum.N)
	}
	if !ok || wex.TraceID != 2 || wex.Value != 42 {
		t.Fatalf("window exemplar = %+v ok=%v, want trace 2 value 42", wex, ok)
	}

	// New window: its exemplar is independent; cumulative keeps the max.
	h.ObserveEx(5, Exemplar{TraceID: 9, SpanID: 9, At: 5 * time.Millisecond})
	if _, wex, ok = h.TakeWindowEx(); !ok || wex.TraceID != 9 || wex.Value != 5 {
		t.Fatalf("second window exemplar = %+v ok=%v, want trace 9 value 5", wex, ok)
	}
	if ex, ok = h.Exemplar(); !ok || ex.TraceID != 2 {
		t.Fatalf("cumulative exemplar after drain = %+v ok=%v, want trace 2", ex, ok)
	}

	// An invalid exemplar (no span context) is ignored even at a new max.
	h.ObserveEx(1000, Exemplar{})
	if ex, _ = h.Exemplar(); ex.TraceID != 2 {
		t.Fatalf("invalid exemplar replaced the real one: %+v", ex)
	}
	if _, _, ok = h.TakeWindowEx(); ok {
		t.Fatal("window exemplar set by an invalid observation")
	}
}
