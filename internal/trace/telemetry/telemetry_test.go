package telemetry

import (
	"strings"
	"testing"
)

func TestLabelOrderCanonicalized(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("orb.requests", L("op", "echo"), L("prio", "10"))
	b := r.Counter("orb.requests", L("prio", "10"), L("op", "echo"))
	if a != b {
		t.Fatal("label order created two instruments for the same series")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("value = %v, want 2", a.Value())
	}
	if c := r.Counter("orb.requests", L("op", "echo"), L("prio", "20")); c == a {
		t.Fatal("different label value mapped to the same instrument")
	}
}

func TestKeyOf(t *testing.T) {
	if got := keyOf("m", nil); got != "m" {
		t.Fatalf("unlabeled key = %q", got)
	}
	got := keyOf("m", []Label{{K: "z", V: "1"}, {K: "a", V: "2"}})
	if got != "m{a=2,z=1}" {
		t.Fatalf("key = %q, want m{a=2,z=1}", got)
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c").Add(-1)
}

func TestGaugeAndHistogram(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("quo.cond", L("cond", "fps"))
	g.Set(27.5)
	if g.Value() != 27.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("orb.rtt_ms", L("op", "echo"))
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	s := h.Summary()
	if s.Mean != 2.5 || s.P50 != 2.5 {
		t.Fatalf("summary mean/P50 = %v/%v, want 2.5/2.5", s.Mean, s.P50)
	}
}

func TestRenderSortedAndStable(t *testing.T) {
	r := NewRegistry()
	// Insert out of lexical order; rendering must sort.
	r.Counter("z.last").Inc()
	r.Counter("a.first").Add(3)
	r.Gauge("mid.gauge").Set(7)
	r.Histogram("h.lat", L("op", "x")).Observe(1.5)

	out := r.Render()
	if out != r.Render() {
		t.Fatal("Render not stable across calls")
	}
	if !strings.Contains(out, "Counters") || !strings.Contains(out, "Gauges") ||
		!strings.Contains(out, "Histograms") {
		t.Fatalf("missing sections:\n%s", out)
	}
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Fatalf("counters not sorted by key:\n%s", out)
	}
	if !strings.Contains(out, "h.lat{op=x}") {
		t.Fatalf("histogram key missing labels:\n%s", out)
	}
}

func TestRenderEmptyRegistry(t *testing.T) {
	if out := NewRegistry().Render(); out != "" {
		t.Fatalf("empty registry rendered %q", out)
	}
}
