// Package telemetry provides a labeled-metric registry alongside the
// span tracer: counters, gauges and histograms keyed by name plus an
// ordered label set (operation, priority, region, ...). Instruments are
// created on first use and rendered through the existing metrics
// machinery (Summarize for histogram percentiles, Table for aligned
// text), so the RED metrics the QuO layer needs — rate, errors,
// duration per operation/priority/region — come out in the same format
// as the paper's tables.
//
// The registry and its instruments are safe for concurrent use: the
// monitoring plane's HTTP exposition endpoint reads them from a real
// goroutine while the simulation goroutine writes. Iteration for
// rendering is sorted by instrument key so output is deterministic.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Exemplar links one histogram observation back to the concrete trace
// that produced it — the bridge from an aggregate bucket or percentile
// to a causal span tree. IDs are plain integers (not trace package
// types) so telemetry stays decoupled from the tracer.
type Exemplar struct {
	// TraceID / SpanID reference the span whose measurement this is.
	TraceID, SpanID uint64
	// Value is the observed value the exemplar annotates.
	Value float64
	// At is the virtual time of the observation.
	At time.Duration
}

// Valid reports whether the exemplar references a real span.
func (e Exemplar) Valid() bool { return e.TraceID != 0 && e.SpanID != 0 }

// Label is one key=value dimension of an instrument.
type Label struct {
	K, V string
}

// L is shorthand for building a Label.
func L(k, v string) Label { return Label{K: k, V: v} }

// keyOf builds the canonical instrument key: name{k1=v1,k2=v2} with
// labels sorted by key.
func keyOf(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].K < sorted[j].K })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteByte('=')
		b.WriteString(l.V)
	}
	b.WriteByte('}')
	return b.String()
}

// Key builds the canonical instrument key for name+labels, the same
// form the registry uses internally and the enumeration helpers return.
func Key(name string, labels ...Label) string { return keyOf(name, labels) }

// ParseKey splits a canonical instrument key back into its name and
// sorted label set. It is the inverse of Key for keys the registry
// minted (label keys and values must not contain ',', '=' or '}').
func ParseKey(key string) (name string, labels []Label) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name = key[:open]
	body := key[open+1 : len(key)-1]
	if body == "" {
		return name, nil
	}
	for _, part := range strings.Split(body, ",") {
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			labels = append(labels, Label{K: part[:eq], V: part[eq+1:]})
		}
	}
	return name, labels
}

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas panic: counters only go up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("telemetry: counter decrement")
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a point-in-time value (queue depth, region index, rate).
type Gauge struct {
	mu  sync.Mutex
	v   float64
	set bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v, g.set = v, true
	g.mu.Unlock()
}

// Add moves the gauge by d (either sign), the usual shape for
// up/down-counted state like queue depth or in-flight requests.
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v, g.set = g.v+d, true
	g.mu.Unlock()
}

// Value returns the last set value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// DefaultReservoirCap bounds the samples a histogram retains. Below the
// cap every observation is kept and summaries are exact; beyond it a
// deterministic reservoir keeps a uniform sample for percentiles while
// count, sum, mean, min and max stay exact.
const DefaultReservoirCap = 4096

// Reservoir is a bounded, deterministic sample of a value stream:
// exact below its capacity, uniform reservoir sampling (Algorithm R
// with a fixed-seed splitmix64 stream, so runs are reproducible) at and
// beyond it. Moment statistics (count, sum, min, max) are tracked
// exactly regardless of capacity. Not safe for concurrent use on its
// own; Histogram adds the locking.
type Reservoir struct {
	cap      int
	n        int64
	sum, sq  float64
	min, max float64
	vs       []float64
	rng      uint64
}

// NewReservoir creates a reservoir keeping at most cap samples
// (DefaultReservoirCap if cap <= 0).
func NewReservoir(cap int) *Reservoir {
	if cap <= 0 {
		cap = DefaultReservoirCap
	}
	return &Reservoir{cap: cap, rng: 0x9e3779b97f4a7c15}
}

// next advances the deterministic splitmix64 stream.
func (r *Reservoir) next() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Observe records one sample.
func (r *Reservoir) Observe(v float64) {
	r.n++
	r.sum += v
	r.sq += v * v
	if r.n == 1 || v < r.min {
		r.min = v
	}
	if r.n == 1 || v > r.max {
		r.max = v
	}
	if len(r.vs) < r.cap {
		r.vs = append(r.vs, v)
		return
	}
	if j := r.next() % uint64(r.n); j < uint64(len(r.vs)) {
		r.vs[j] = v
	}
}

// Count returns the number of observations (not the retained sample
// size).
func (r *Reservoir) Count() int64 { return r.n }

// Sum returns the exact sum of all observations.
func (r *Reservoir) Sum() float64 { return r.sum }

// Values returns the retained samples (all observations, in order,
// while under the capacity).
func (r *Reservoir) Values() []float64 { return r.vs }

// Reset clears the reservoir.
func (r *Reservoir) Reset() {
	r.n, r.sum, r.sq, r.min, r.max = 0, 0, 0, 0, 0
	r.vs = r.vs[:0]
}

// Summary computes distribution statistics. Below the capacity it is
// byte-for-byte what metrics.Summarize over the full stream returns;
// beyond it, percentiles come from the uniform sample while N, mean,
// std, min and max remain exact.
func (r *Reservoir) Summary() metrics.Summary {
	return summarizeSampled(r.vs, r.n, r.sum, r.sq, r.min, r.max)
}

// summarizeSampled builds a Summary from a retained sample plus the
// exact stream moments, the shared tail of Reservoir.Summary and the
// out-of-lock Histogram.Summary path.
func summarizeSampled(vs []float64, n int64, sum, sq, min, max float64) metrics.Summary {
	if n == 0 {
		return metrics.Summary{}
	}
	s := metrics.Summarize(vs)
	if int64(len(vs)) == n {
		return s
	}
	s.N = int(n)
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	s.Mean = mean
	s.Std = math.Sqrt(variance)
	s.Min, s.Max = min, max
	return s
}

// Histogram accumulates observations for distribution statistics. Its
// memory is bounded: a deterministic reservoir caps retained samples
// (see Reservoir) while counts and moments stay exact. Alongside the
// cumulative distribution it maintains a window reservoir the
// monitoring sampler drains once per tick (TakeWindow), which is how
// per-window percentiles reach the time-series plane.
type Histogram struct {
	mu  sync.Mutex
	cum *Reservoir
	win *Reservoir

	// Max-value exemplars: the worst observation seen, cumulatively and
	// within the current window — the tail sample an adaptive trace
	// sampler is most likely to have kept.
	cumEx, winEx Exemplar
}

func (h *Histogram) init() {
	if h.cum == nil {
		h.cum = NewReservoir(0)
		h.win = NewReservoir(0)
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.init()
	h.cum.Observe(v)
	h.win.Observe(v)
	h.mu.Unlock()
}

// ObserveEx records one sample carrying its trace context. The
// histogram retains the max-valued exemplar per window and cumulatively
// (first-seen wins on exact ties, so runs are deterministic).
func (h *Histogram) ObserveEx(v float64, ex Exemplar) {
	ex.Value = v
	h.mu.Lock()
	h.init()
	h.cum.Observe(v)
	h.win.Observe(v)
	if ex.Valid() {
		if !h.cumEx.Valid() || v > h.cumEx.Value {
			h.cumEx = ex
		}
		if !h.winEx.Valid() || v > h.winEx.Value {
			h.winEx = ex
		}
	}
	h.mu.Unlock()
}

// Exemplar returns the cumulative max-value exemplar, if any
// observation carried a trace context.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cumEx, h.cumEx.Valid()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cum == nil {
		return 0
	}
	return int(h.cum.Count())
}

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cum == nil {
		return 0
	}
	return h.cum.Sum()
}

// Values returns a copy of the retained samples (every observation, in
// order, for streams under the reservoir capacity).
func (h *Histogram) Values() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cum == nil {
		return nil
	}
	return append([]float64(nil), h.cum.Values()...)
}

// Summary computes distribution statistics over all observations. The
// retained sample is copied out under the lock (a bounded memcpy) and
// the O(n log n) percentile computation runs outside it, so a scrape
// summarising a full reservoir never blocks the data path's Observe.
func (h *Histogram) Summary() metrics.Summary {
	h.mu.Lock()
	if h.cum == nil {
		h.mu.Unlock()
		return metrics.Summary{}
	}
	vs := append([]float64(nil), h.cum.vs...)
	n, sum, sq := h.cum.n, h.cum.sum, h.cum.sq
	min, max := h.cum.min, h.cum.max
	h.mu.Unlock()
	return summarizeSampled(vs, n, sum, sq, min, max)
}

// TakeWindow summarizes the observations since the previous TakeWindow
// (or since creation) and resets the window, leaving the cumulative
// distribution untouched.
func (h *Histogram) TakeWindow() metrics.Summary {
	s, _, _ := h.TakeWindowEx()
	return s
}

// TakeWindowEx is TakeWindow plus the window's max-value exemplar (ok
// reports whether any observation in the window carried one).
func (h *Histogram) TakeWindowEx() (metrics.Summary, Exemplar, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.win == nil {
		return metrics.Summary{}, Exemplar{}, false
	}
	s := h.win.Summary()
	h.win.Reset()
	ex := h.winEx
	h.winEx = Exemplar{}
	return s, ex, ex.Valid()
}

// Registry holds labeled instruments, created on first use. It is safe
// for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	k := keyOf(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	k := keyOf(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram for
// name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	k := keyOf(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[k]
	if !ok {
		h = &Histogram{}
		r.histograms[k] = h
	}
	return h
}

func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterKeys returns the canonical keys of every counter, sorted. The
// monitoring sampler enumerates instruments through these helpers.
func (r *Registry) CounterKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.counters)
}

// GaugeKeys returns the canonical keys of every gauge, sorted.
func (r *Registry) GaugeKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.gauges)
}

// HistogramKeys returns the canonical keys of every histogram, sorted.
func (r *Registry) HistogramKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.histograms)
}

// CounterByKey returns the counter for a canonical key, or nil.
func (r *Registry) CounterByKey(key string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[key]
}

// GaugeByKey returns the gauge for a canonical key, or nil.
func (r *Registry) GaugeByKey(key string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[key]
}

// HistogramByKey returns the histogram for a canonical key, or nil.
func (r *Registry) HistogramByKey(key string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histograms[key]
}

// CounterTable renders all counters as a metrics.Table, sorted by key.
func (r *Registry) CounterTable() *metrics.Table {
	tb := metrics.NewTable("Counters", "Metric", "Value")
	for _, k := range r.CounterKeys() {
		tb.AddRow(k, fmt.Sprintf("%g", r.CounterByKey(k).Value()))
	}
	return tb
}

// GaugeTable renders all gauges as a metrics.Table, sorted by key.
func (r *Registry) GaugeTable() *metrics.Table {
	tb := metrics.NewTable("Gauges", "Metric", "Value")
	for _, k := range r.GaugeKeys() {
		tb.AddRow(k, fmt.Sprintf("%g", r.GaugeByKey(k).Value()))
	}
	return tb
}

// HistogramTable renders all histograms with their distribution
// statistics, sorted by key.
func (r *Registry) HistogramTable() *metrics.Table {
	tb := metrics.NewTable("Histograms", "Metric", "N", "Mean", "P50", "P95", "P99", "Max")
	for _, k := range r.HistogramKeys() {
		s := r.HistogramByKey(k).Summary()
		tb.AddRow(k,
			fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%.6g", s.Mean),
			fmt.Sprintf("%.6g", s.P50),
			fmt.Sprintf("%.6g", s.P95),
			fmt.Sprintf("%.6g", s.P99),
			fmt.Sprintf("%.6g", s.Max),
		)
	}
	return tb
}

// Render produces every non-empty table, in counter/gauge/histogram
// order.
func (r *Registry) Render() string {
	r.mu.Lock()
	nc, ng, nh := len(r.counters), len(r.gauges), len(r.histograms)
	r.mu.Unlock()
	var b strings.Builder
	if nc > 0 {
		b.WriteString(r.CounterTable().Render())
	}
	if ng > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.GaugeTable().Render())
	}
	if nh > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.HistogramTable().Render())
	}
	return b.String()
}
