// Package telemetry provides a labeled-metric registry alongside the
// span tracer: counters, gauges and histograms keyed by name plus an
// ordered label set (operation, priority, region, ...). Instruments are
// created on first use and rendered through the existing metrics
// machinery (Summarize for histogram percentiles, Table for aligned
// text), so the RED metrics the QuO layer needs — rate, errors,
// duration per operation/priority/region — come out in the same format
// as the paper's tables.
//
// Like the rest of the simulation, a Registry is driven from the single
// kernel goroutine and needs no locking; iteration for rendering is
// sorted by instrument key so output is deterministic.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Label is one key=value dimension of an instrument.
type Label struct {
	K, V string
}

// L is shorthand for building a Label.
func L(k, v string) Label { return Label{K: k, V: v} }

// keyOf builds the canonical instrument key: name{k1=v1,k2=v2} with
// labels sorted by key.
func keyOf(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].K < sorted[j].K })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteByte('=')
		b.WriteString(l.V)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing count.
type Counter struct {
	v float64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d (negative deltas panic: counters only go up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("telemetry: counter decrement")
	}
	c.v += d
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a point-in-time value (queue depth, region index, rate).
type Gauge struct {
	v   float64
	set bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.v, g.set = v, true }

// Value returns the last set value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram accumulates observations for distribution statistics.
type Histogram struct {
	vs []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.vs = append(h.vs, v) }

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.vs) }

// Values returns the raw samples in observation order.
func (h *Histogram) Values() []float64 { return h.vs }

// Summary computes distribution statistics via metrics.Summarize.
func (h *Histogram) Summary() metrics.Summary { return metrics.Summarize(h.vs) }

// Registry holds labeled instruments, created on first use.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	k := keyOf(name, labels)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	k := keyOf(name, labels)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram for
// name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	k := keyOf(name, labels)
	h, ok := r.histograms[k]
	if !ok {
		h = &Histogram{}
		r.histograms[k] = h
	}
	return h
}

func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterTable renders all counters as a metrics.Table, sorted by key.
func (r *Registry) CounterTable() *metrics.Table {
	tb := metrics.NewTable("Counters", "Metric", "Value")
	for _, k := range sortedKeys(r.counters) {
		tb.AddRow(k, fmt.Sprintf("%g", r.counters[k].v))
	}
	return tb
}

// GaugeTable renders all gauges as a metrics.Table, sorted by key.
func (r *Registry) GaugeTable() *metrics.Table {
	tb := metrics.NewTable("Gauges", "Metric", "Value")
	for _, k := range sortedKeys(r.gauges) {
		tb.AddRow(k, fmt.Sprintf("%g", r.gauges[k].v))
	}
	return tb
}

// HistogramTable renders all histograms with their distribution
// statistics, sorted by key.
func (r *Registry) HistogramTable() *metrics.Table {
	tb := metrics.NewTable("Histograms", "Metric", "N", "Mean", "P50", "P95", "P99", "Max")
	for _, k := range sortedKeys(r.histograms) {
		s := r.histograms[k].Summary()
		tb.AddRow(k,
			fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%.6g", s.Mean),
			fmt.Sprintf("%.6g", s.P50),
			fmt.Sprintf("%.6g", s.P95),
			fmt.Sprintf("%.6g", s.P99),
			fmt.Sprintf("%.6g", s.Max),
		)
	}
	return tb
}

// Render produces every non-empty table, in counter/gauge/histogram
// order.
func (r *Registry) Render() string {
	var b strings.Builder
	if len(r.counters) > 0 {
		b.WriteString(r.CounterTable().Render())
	}
	if len(r.gauges) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.GaugeTable().Render())
	}
	if len(r.histograms) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.HistogramTable().Render())
	}
	return b.String()
}
