// Package trace provides deterministic, span-based end-to-end tracing
// for the simulated DRE system: a Tracer mints Spans whose timestamps
// are virtual sim.Time, so a scenario run with a fixed seed produces a
// bit-identical trace every time. Spans carry a name, the middleware
// layer that produced them (orb, rtcorba, netsim, poa, quo, avstreams),
// a parent link, ordered attributes and timestamped events.
//
// One invocation (or one video frame) yields a span tree covering every
// layer it crossed — client marshalling, lane queueing, per-hop network
// transit, servant execution — because the trace context is propagated
// across process boundaries in a GIOP service context (see the giop
// package) exactly as the RT-CORBA priority is. The Breakdown helper
// decomposes a root span's wall time into exclusive per-layer shares
// that sum to the end-to-end latency, answering the paper's central
// measurement question: which layer ate the deadline.
package trace

import (
	"fmt"
	"strconv"

	"repro/internal/sim"
)

// Layer names used by the instrumented subsystems. Free-form strings are
// allowed; these constants keep the built-in instrumentation consistent.
const (
	LayerORB       = "orb"
	LayerRTCORBA   = "rtcorba"
	LayerNetsim    = "netsim"
	LayerPOA       = "poa"
	LayerQuO       = "quo"
	LayerAVStreams = "avstreams"
	LayerApp       = "app"
	LayerFT        = "ft"
	// LayerOverload tags spans emitted by the overload-protection
	// machinery: deadline sheds, admission refusals, and circuit-breaker
	// transitions.
	LayerOverload = "overload"
	// LayerChaos tags spans emitted by the chaos TCP proxy
	// (internal/chaos): one span per active fault window, so injected
	// fault timelines line up with the failover spans they provoke.
	LayerChaos = "chaos"
	// LayerWire tags spans emitted by the real-socket GIOP plane
	// (internal/wire): client invocations, connection reads, lane
	// queueing and servant dispatch over actual TCP.
	LayerWire = "wire"
	// LayerPubSub tags spans emitted by the publish–subscribe event
	// channel (internal/pubsub): admission decisions and fan-out.
	LayerPubSub = "pubsub"
)

// TraceID identifies one causally-related span tree.
type TraceID uint64

// SpanID identifies one span within a tracer.
type SpanID uint64

// SpanContext is the portable reference to a span: the pair of IDs that
// crosses process boundaries (CDR-encoded in a GIOP service context, or
// carried alongside a video frame).
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context refers to a real span.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

func (c SpanContext) String() string {
	return fmt.Sprintf("trace=%d span=%d", c.Trace, c.Span)
}

// Attr is one key/value attribute. Attributes are an ordered slice, not
// a map, so rendering a span is deterministic.
type Attr struct {
	Key string
	Val string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Val: strconv.FormatInt(v, 10)} }

// Dur builds a duration attribute.
func Dur(k string, d sim.Time) Attr { return Attr{Key: k, Val: d.String()} }

// SpanEvent is a timestamped annotation within a span (a packet drop, a
// queue refusal, a contract region transition).
type SpanEvent struct {
	T     sim.Time
	Name  string
	Attrs []Attr
}

// Span is one timed operation in one layer. Spans are created by a
// Tracer and delivered to its sinks when ended.
type Span struct {
	TraceID TraceID
	ID      SpanID
	Parent  SpanID // 0 for a root span
	Name    string
	Layer   string
	Start   sim.Time
	End     sim.Time
	Attrs   []Attr
	Events  []SpanEvent

	tracer *Tracer
	ended  bool
}

// Context returns the span's portable reference.
func (s *Span) Context() SpanContext { return SpanContext{Trace: s.TraceID, Span: s.ID} }

// Duration returns End-Start (zero while the span is open).
func (s *Span) Duration() sim.Time {
	if !s.ended {
		return 0
	}
	return s.End - s.Start
}

// SetAttr appends an attribute.
func (s *Span) SetAttr(attrs ...Attr) *Span {
	s.Attrs = append(s.Attrs, attrs...)
	return s
}

// Event records a timestamped annotation at the current virtual time.
func (s *Span) Event(name string, attrs ...Attr) {
	if s.ended {
		return
	}
	s.Events = append(s.Events, SpanEvent{T: s.tracer.Now(), Name: name, Attrs: attrs})
}

// Finish ends the span at the current virtual time, delivering it to the
// tracer's sinks. Ending twice is a no-op.
func (s *Span) Finish() {
	if s.ended {
		return
	}
	s.ended = true
	s.End = s.tracer.Now()
	delete(s.tracer.open, s.ID)
	for _, sink := range s.tracer.sinks {
		sink.OnEnd(s)
	}
}

// Ended reports whether Finish has run.
func (s *Span) Ended() bool { return s.ended }

// Sink receives spans as they end. The in-memory Collector and the JSONL
// exporter implement it.
type Sink interface {
	OnEnd(s *Span)
}

// Tracer mints spans against a clock — a simulation kernel's virtual
// clock (NewTracer) or any injected time source such as a wall clock
// (NewTracerWithClock). IDs are sequential, so a deterministic scenario
// produces identical traces on every run. The zero value is unusable.
//
// A Tracer is not safe for concurrent use — in a simulation all
// interaction happens from the kernel goroutine, like the kernel clock
// it reads. Callers off that model (the wire plane's per-connection
// goroutines) must serialise access with their own mutex; internal/wire
// does exactly that around a wall-clock tracer.
type Tracer struct {
	now       func() sim.Time
	col       *Collector
	sinks     []Sink
	nextTrace uint64
	nextSpan  uint64
	open      map[SpanID]*Span
	active    map[any]SpanContext
}

// NewTracer creates a tracer on kernel k with an in-memory Collector
// already attached.
func NewTracer(k *sim.Kernel) *Tracer {
	return NewTracerWithClock(k.Now)
}

// NewTracerWithClock creates a tracer reading time from now — the hook
// that lets the real-socket wire plane mint spans against the wall
// clock while every simulated subsystem keeps using virtual time. The
// same concurrency contract applies regardless of clock: callers must
// serialise access.
func NewTracerWithClock(now func() sim.Time) *Tracer {
	tr := &Tracer{
		now:    now,
		col:    NewCollector(),
		open:   make(map[SpanID]*Span),
		active: make(map[any]SpanContext),
	}
	tr.sinks = append(tr.sinks, tr.col)
	return tr
}

// Now returns the current clock reading (virtual time in a simulation).
func (tr *Tracer) Now() sim.Time { return tr.now() }

// Collector returns the tracer's in-memory span store.
func (tr *Tracer) Collector() *Collector { return tr.col }

// AddSink attaches an additional sink (e.g. a JSONL exporter).
func (tr *Tracer) AddSink(s Sink) { tr.sinks = append(tr.sinks, s) }

// StartRoot begins a span that roots a fresh trace.
func (tr *Tracer) StartRoot(name, layer string) *Span {
	tr.nextTrace++
	return tr.start(TraceID(tr.nextTrace), 0, name, layer)
}

// StartChild begins a span under parent. An invalid parent context roots
// a fresh trace instead, so callers need not special-case "no caller
// span yet".
func (tr *Tracer) StartChild(parent SpanContext, name, layer string) *Span {
	if !parent.Valid() {
		return tr.StartRoot(name, layer)
	}
	return tr.start(parent.Trace, parent.Span, name, layer)
}

func (tr *Tracer) start(trace TraceID, parent SpanID, name, layer string) *Span {
	tr.nextSpan++
	s := &Span{
		TraceID: trace,
		ID:      SpanID(tr.nextSpan),
		Parent:  parent,
		Name:    name,
		Layer:   layer,
		Start:   tr.now(),
		tracer:  tr,
	}
	tr.open[s.ID] = s
	return s
}

// Finish ends the open span referenced by ctx, if any. It is the remote
// side's way of closing a span whose *Span object it never held (e.g. a
// video receiver ending the sender's per-frame span).
func (tr *Tracer) Finish(ctx SpanContext) {
	if s, ok := tr.open[ctx.Span]; ok && s.TraceID == ctx.Trace {
		s.Finish()
	}
}

// OpenSpan returns the still-open span referenced by ctx, or nil.
func (tr *Tracer) OpenSpan(ctx SpanContext) *Span {
	s, ok := tr.open[ctx.Span]
	if !ok || s.TraceID != ctx.Trace {
		return nil
	}
	return s
}

// FlushOpen force-ends every still-open span at the current virtual
// time, tagging each with unfinished=true. Call it at scenario teardown
// so long-lived spans (contract lifetimes, dropped frames) reach the
// sinks. Spans are flushed in ID order for determinism.
func (tr *Tracer) FlushOpen() {
	ids := make([]SpanID, 0, len(tr.open))
	for id := range tr.open {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		if s, ok := tr.open[id]; ok {
			s.SetAttr(String("unfinished", "true"))
			s.Finish()
		}
	}
}

// SetActive records ctx as the ambient span for key (conventionally an
// *rtos.Thread). The ORB uses it so a nested invocation made from inside
// a servant chains onto the inbound dispatch span.
func (tr *Tracer) SetActive(key any, ctx SpanContext) { tr.active[key] = ctx }

// Active returns the ambient span context for key (zero if none).
func (tr *Tracer) Active(key any) SpanContext { return tr.active[key] }

// ClearActive removes the ambient span for key.
func (tr *Tracer) ClearActive(key any) { delete(tr.active, key) }
