// Package naming implements a CORBA Naming Service subset: a directory
// of name → object-reference bindings served by a real CORBA servant, so
// distributed applications can rendezvous without sharing references out
// of band (the "Name Services" box in the paper's Figure 1).
//
// The wire protocol is ordinary GIOP: names travel as CDR strings and
// references in their stringified (sior:) form, so a resolve performed
// by a remote client exercises the full invocation path.
package naming

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cdr"
	"repro/internal/orb"
	"repro/internal/rtos"
)

// Well-known identity of the naming service.
const (
	// POAName is the POA the service is activated under.
	POAName = "naming"
	// ServiceID is the object id of the root context.
	ServiceID = "root"
	// Port is the conventional ORB port for a dedicated name server.
	Port = 2809
)

// Errors surfaced by the client stub.
var (
	// ErrNotFound means the name is unbound.
	ErrNotFound = errors.New("naming: name not found")
	// ErrAlreadyBound means Bind hit an existing binding (use Rebind).
	ErrAlreadyBound = errors.New("naming: name already bound")
)

// Service is the naming-context servant.
type Service struct {
	bindings map[string]*orb.ObjectRef
}

// NewService returns an empty naming context.
func NewService() *Service {
	return &Service{bindings: make(map[string]*orb.ObjectRef)}
}

// Activate registers the service with o under the conventional POA/id
// and returns its reference.
func Activate(o *orb.ORB) (*Service, *orb.ObjectRef, error) {
	s := NewService()
	poa, err := o.CreatePOA(POAName, orb.POAConfig{ServerPriority: 20000})
	if err != nil {
		return nil, nil, err
	}
	ref, err := poa.Activate(ServiceID, s)
	if err != nil {
		return nil, nil, err
	}
	return s, ref, nil
}

// Bind adds a binding locally (server-side API).
func (s *Service) Bind(name string, ref *orb.ObjectRef) error {
	if _, dup := s.bindings[name]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyBound, name)
	}
	s.bindings[name] = ref
	return nil
}

// Rebind adds or replaces a binding locally.
func (s *Service) Rebind(name string, ref *orb.ObjectRef) {
	s.bindings[name] = ref
}

// Resolve looks a name up locally.
func (s *Service) Resolve(name string) (*orb.ObjectRef, error) {
	ref, ok := s.bindings[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return ref, nil
}

// Unbind removes a binding locally.
func (s *Service) Unbind(name string) error {
	if _, ok := s.bindings[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.bindings, name)
	return nil
}

// List returns the bound names in sorted order.
func (s *Service) List() []string {
	out := make([]string, 0, len(s.bindings))
	for name := range s.bindings {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Dispatch implements orb.Servant. Operations:
//
//	bind(name: string, ref: string)            raises AlreadyBound
//	rebind(name: string, ref: string)
//	resolve(name: string) -> ref: string       raises NotFound
//	unbind(name: string)                       raises NotFound
//	list() -> names: sequence<string>
func (s *Service) Dispatch(req *orb.ServerRequest) ([]byte, error) {
	const order = cdr.LittleEndian
	d := cdr.NewDecoder(req.Body, order)
	switch req.Op {
	case "bind", "rebind":
		name, err := d.String()
		if err != nil {
			return nil, badParam()
		}
		refStr, err := d.String()
		if err != nil {
			return nil, badParam()
		}
		ref, err := orb.ParseRef(refStr)
		if err != nil {
			return nil, badParam()
		}
		if req.Op == "rebind" {
			s.Rebind(name, ref)
			return nil, nil
		}
		if err := s.Bind(name, ref); err != nil {
			return nil, &orb.SystemException{ID: "IDL:omg.org/CosNaming/AlreadyBound:1.0"}
		}
		return nil, nil
	case "resolve":
		name, err := d.String()
		if err != nil {
			return nil, badParam()
		}
		ref, err := s.Resolve(name)
		if err != nil {
			return nil, &orb.SystemException{ID: "IDL:omg.org/CosNaming/NotFound:1.0"}
		}
		e := cdr.NewEncoder(order)
		e.PutString(ref.String())
		return e.Bytes(), nil
	case "unbind":
		name, err := d.String()
		if err != nil {
			return nil, badParam()
		}
		if err := s.Unbind(name); err != nil {
			return nil, &orb.SystemException{ID: "IDL:omg.org/CosNaming/NotFound:1.0"}
		}
		return nil, nil
	case "list":
		names := s.List()
		e := cdr.NewEncoder(order)
		e.PutULong(uint32(len(names)))
		for _, n := range names {
			e.PutString(n)
		}
		return e.Bytes(), nil
	default:
		return nil, &orb.SystemException{ID: "IDL:omg.org/CORBA/BAD_OPERATION:1.0"}
	}
}

func badParam() error {
	return &orb.SystemException{ID: "IDL:omg.org/CORBA/BAD_PARAM:1.0"}
}

// Client is a typed stub for a remote naming context.
type Client struct {
	orb *orb.ORB
	ref *orb.ObjectRef
}

// NewClient wraps the naming context at ref.
func NewClient(o *orb.ORB, ref *orb.ObjectRef) *Client {
	return &Client{orb: o, ref: ref}
}

// Bind binds name to ref remotely.
func (c *Client) Bind(t *rtos.Thread, name string, ref *orb.ObjectRef) error {
	return c.bindOp(t, "bind", name, ref)
}

// Rebind binds or replaces name remotely.
func (c *Client) Rebind(t *rtos.Thread, name string, ref *orb.ObjectRef) error {
	return c.bindOp(t, "rebind", name, ref)
}

func (c *Client) bindOp(t *rtos.Thread, op, name string, ref *orb.ObjectRef) error {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.PutString(name)
	e.PutString(ref.String())
	_, err := c.orb.Invoke(t, c.ref, op, e.Bytes())
	if err != nil && isException(err, "AlreadyBound") {
		return fmt.Errorf("%w: %q", ErrAlreadyBound, name)
	}
	return err
}

// Resolve looks name up remotely.
func (c *Client) Resolve(t *rtos.Thread, name string) (*orb.ObjectRef, error) {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.PutString(name)
	body, err := c.orb.Invoke(t, c.ref, "resolve", e.Bytes())
	if err != nil {
		if isException(err, "NotFound") {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return nil, err
	}
	d := cdr.NewDecoder(body, cdr.LittleEndian)
	refStr, err := d.String()
	if err != nil {
		return nil, fmt.Errorf("naming: decoding resolve reply: %w", err)
	}
	return orb.ParseRef(refStr)
}

// Unbind removes a binding remotely.
func (c *Client) Unbind(t *rtos.Thread, name string) error {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.PutString(name)
	_, err := c.orb.Invoke(t, c.ref, "unbind", e.Bytes())
	if err != nil && isException(err, "NotFound") {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return err
}

// List returns all bound names remotely.
func (c *Client) List(t *rtos.Thread) ([]string, error) {
	body, err := c.orb.Invoke(t, c.ref, "list", nil)
	if err != nil {
		return nil, err
	}
	d := cdr.NewDecoder(body, cdr.LittleEndian)
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := d.String()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func isException(err error, fragment string) bool {
	var se *orb.SystemException
	return errors.As(err, &se) && strings.Contains(se.ID, fragment)
}
