package naming

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/rtcorba"
	"repro/internal/rtos"
	"repro/internal/sim"
)

func rig() (*sim.Kernel, *orb.ORB, *orb.ORB, *rtos.Host) {
	k := sim.NewKernel(1)
	n := netsim.New(k)
	cn := n.AddHost("client")
	sn := n.AddHost("nameserver")
	n.ConnectSym(cn, sn, netsim.LinkConfig{Bps: 10e6, Delay: time.Millisecond})
	ch := rtos.NewHost(k, "client", rtos.HostConfig{})
	sh := rtos.NewHost(k, "nameserver", rtos.HostConfig{})
	cli := orb.New("cli", ch, n, cn, orb.Config{})
	srv := orb.New("srv", sh, n, sn, orb.Config{})
	return k, cli, srv, ch
}

func sampleRef(i int) *orb.ObjectRef {
	return &orb.ObjectRef{
		Addr:           netsim.Addr{Node: netsim.NodeID(i), Port: 2809},
		Key:            []byte("app/obj"),
		Model:          rtcorba.ClientPropagated,
		ServerPriority: 100,
	}
}

func TestLocalBindResolveUnbind(t *testing.T) {
	s := NewService()
	ref := sampleRef(1)
	if err := s.Bind("video/sender", ref); err != nil {
		t.Fatal(err)
	}
	got, err := s.Resolve("video/sender")
	if err != nil || got != ref {
		t.Fatalf("resolve = %v, %v", got, err)
	}
	if err := s.Bind("video/sender", ref); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("duplicate bind err = %v", err)
	}
	s.Rebind("video/sender", sampleRef(2))
	got, _ = s.Resolve("video/sender")
	if got.Addr.Node != 2 {
		t.Fatalf("rebind did not replace: %v", got)
	}
	if err := s.Unbind("video/sender"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve("video/sender"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolve after unbind err = %v", err)
	}
	if err := s.Unbind("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unbind ghost err = %v", err)
	}
}

func TestRemoteRoundTrip(t *testing.T) {
	k, cli, srv, ch := rig()
	_, rootRef, err := Activate(srv)
	if err != nil {
		t.Fatal(err)
	}
	nc := NewClient(cli, rootRef)
	target := sampleRef(5)
	var resolved *orb.ObjectRef
	var names []string
	ch.Spawn("caller", 50, func(th *rtos.Thread) {
		if err := nc.Bind(th, "services/atr", target); err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		if err := nc.Bind(th, "services/video", sampleRef(6)); err != nil {
			t.Errorf("bind 2: %v", err)
			return
		}
		var err error
		resolved, err = nc.Resolve(th, "services/atr")
		if err != nil {
			t.Errorf("resolve: %v", err)
			return
		}
		names, err = nc.List(th)
		if err != nil {
			t.Errorf("list: %v", err)
		}
	})
	k.RunUntil(time.Second)
	if resolved == nil || resolved.Addr != target.Addr || string(resolved.Key) != string(target.Key) ||
		resolved.ServerPriority != target.ServerPriority {
		t.Fatalf("resolved = %+v, want %+v", resolved, target)
	}
	if len(names) != 2 || names[0] != "services/atr" || names[1] != "services/video" {
		t.Fatalf("names = %v", names)
	}
}

func TestRemoteErrors(t *testing.T) {
	k, cli, srv, ch := rig()
	_, rootRef, err := Activate(srv)
	if err != nil {
		t.Fatal(err)
	}
	nc := NewClient(cli, rootRef)
	var resolveErr, dupErr, unbindErr error
	ch.Spawn("caller", 50, func(th *rtos.Thread) {
		_, resolveErr = nc.Resolve(th, "nope")
		if err := nc.Bind(th, "x", sampleRef(1)); err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		dupErr = nc.Bind(th, "x", sampleRef(2))
		unbindErr = nc.Unbind(th, "nope")
	})
	k.RunUntil(time.Second)
	if !errors.Is(resolveErr, ErrNotFound) {
		t.Fatalf("resolve err = %v", resolveErr)
	}
	if !errors.Is(dupErr, ErrAlreadyBound) {
		t.Fatalf("dup bind err = %v", dupErr)
	}
	if !errors.Is(unbindErr, ErrNotFound) {
		t.Fatalf("unbind err = %v", unbindErr)
	}
}

func TestRemoteRebind(t *testing.T) {
	k, cli, srv, ch := rig()
	_, rootRef, _ := Activate(srv)
	nc := NewClient(cli, rootRef)
	var got *orb.ObjectRef
	ch.Spawn("caller", 50, func(th *rtos.Thread) {
		_ = nc.Bind(th, "svc", sampleRef(1))
		if err := nc.Rebind(th, "svc", sampleRef(9)); err != nil {
			t.Errorf("rebind: %v", err)
			return
		}
		got, _ = nc.Resolve(th, "svc")
	})
	k.RunUntil(time.Second)
	if got == nil || got.Addr.Node != 9 {
		t.Fatalf("resolved after rebind = %v", got)
	}
}
