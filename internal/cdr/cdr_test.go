package cdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func orders() []ByteOrder { return []ByteOrder{BigEndian, LittleEndian} }

func TestPrimitiveRoundTrip(t *testing.T) {
	for _, o := range orders() {
		e := NewEncoder(o)
		e.PutOctet(0xAB)
		e.PutBool(true)
		e.PutShort(-1234)
		e.PutUShort(54321)
		e.PutLong(-7_000_000)
		e.PutULong(4_000_000_000)
		e.PutLongLong(-9e15)
		e.PutULongLong(1 << 60)
		e.PutFloat(3.25)
		e.PutDouble(-2.5e-10)
		e.PutString("hello, GIOP")
		e.PutOctetSeq([]byte{1, 2, 3})

		d := NewDecoder(e.Bytes(), o)
		if v, err := d.Octet(); err != nil || v != 0xAB {
			t.Fatalf("%v octet = %v, %v", o, v, err)
		}
		if v, err := d.Bool(); err != nil || v != true {
			t.Fatalf("%v bool = %v, %v", o, v, err)
		}
		if v, err := d.Short(); err != nil || v != -1234 {
			t.Fatalf("%v short = %v, %v", o, v, err)
		}
		if v, err := d.UShort(); err != nil || v != 54321 {
			t.Fatalf("%v ushort = %v, %v", o, v, err)
		}
		if v, err := d.Long(); err != nil || v != -7_000_000 {
			t.Fatalf("%v long = %v, %v", o, v, err)
		}
		if v, err := d.ULong(); err != nil || v != 4_000_000_000 {
			t.Fatalf("%v ulong = %v, %v", o, v, err)
		}
		if v, err := d.LongLong(); err != nil || v != -9e15 {
			t.Fatalf("%v longlong = %v, %v", o, v, err)
		}
		if v, err := d.ULongLong(); err != nil || v != 1<<60 {
			t.Fatalf("%v ulonglong = %v, %v", o, v, err)
		}
		if v, err := d.Float(); err != nil || v != 3.25 {
			t.Fatalf("%v float = %v, %v", o, v, err)
		}
		if v, err := d.Double(); err != nil || v != -2.5e-10 {
			t.Fatalf("%v double = %v, %v", o, v, err)
		}
		if v, err := d.String(); err != nil || v != "hello, GIOP" {
			t.Fatalf("%v string = %q, %v", o, v, err)
		}
		if v, err := d.OctetSeq(); err != nil || !bytes.Equal(v, []byte{1, 2, 3}) {
			t.Fatalf("%v octetseq = %v, %v", o, v, err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("%v left %d bytes", o, d.Remaining())
		}
	}
}

func TestAlignment(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutOctet(1)   // offset 0
	e.PutULong(7)   // aligns to 4: 3 pad bytes
	e.PutOctet(2)   // offset 8
	e.PutDouble(1)  // aligns to 16: 7 pad bytes
	e.PutOctet(3)   // offset 24
	e.PutUShort(42) // aligns to 26: 1 pad byte
	want := 28
	if e.Len() != want {
		t.Fatalf("encoded length = %d, want %d", e.Len(), want)
	}
	// Pads must decode transparently.
	d := NewDecoder(e.Bytes(), BigEndian)
	d.Octet()
	if v, _ := d.ULong(); v != 7 {
		t.Fatal("ulong misaligned")
	}
	d.Octet()
	if v, _ := d.Double(); v != 1 {
		t.Fatal("double misaligned")
	}
	d.Octet()
	if v, _ := d.UShort(); v != 42 {
		t.Fatal("ushort misaligned")
	}
}

func TestBigEndianWireFormat(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutULong(0x01020304)
	if !bytes.Equal(e.Bytes(), []byte{1, 2, 3, 4}) {
		t.Fatalf("big-endian ulong = %v", e.Bytes())
	}
	e2 := NewEncoder(LittleEndian)
	e2.PutULong(0x01020304)
	if !bytes.Equal(e2.Bytes(), []byte{4, 3, 2, 1}) {
		t.Fatalf("little-endian ulong = %v", e2.Bytes())
	}
}

func TestStringWireFormat(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutString("ab")
	want := []byte{0, 0, 0, 3, 'a', 'b', 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("string encoding = %v, want %v", e.Bytes(), want)
	}
}

func TestEmptyString(t *testing.T) {
	e := NewEncoder(LittleEndian)
	e.PutString("")
	d := NewDecoder(e.Bytes(), LittleEndian)
	v, err := d.String()
	if err != nil || v != "" {
		t.Fatalf("empty string = %q, %v", v, err)
	}
}

func TestTruncatedErrors(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutULong(12345)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut], BigEndian)
		if _, err := d.ULong(); err == nil {
			t.Fatalf("truncated at %d decoded successfully", cut)
		}
	}
}

func TestInvalidBool(t *testing.T) {
	d := NewDecoder([]byte{7}, BigEndian)
	if _, err := d.Bool(); err == nil {
		t.Fatal("bool octet 7 accepted")
	}
}

func TestInvalidStringMissingNul(t *testing.T) {
	// length 2, bytes "ab" with no NUL.
	d := NewDecoder([]byte{0, 0, 0, 2, 'a', 'b'}, BigEndian)
	if _, err := d.String(); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestZeroLengthStringRejected(t *testing.T) {
	d := NewDecoder([]byte{0, 0, 0, 0}, BigEndian)
	if _, err := d.String(); err == nil {
		t.Fatal("zero-length string accepted")
	}
}

func TestEncapsulationRoundTrip(t *testing.T) {
	inner := NewEncoder(LittleEndian)
	inner.PutString("component")
	inner.PutULong(99)

	outer := NewEncoder(BigEndian)
	outer.PutULong(1) // something before, to force interesting alignment
	outer.PutEncapsulation(inner)

	d := NewDecoder(outer.Bytes(), BigEndian)
	if v, _ := d.ULong(); v != 1 {
		t.Fatal("outer prefix lost")
	}
	id, err := d.Encapsulation()
	if err != nil {
		t.Fatal(err)
	}
	if s, err := id.String(); err != nil || s != "component" {
		t.Fatalf("inner string = %q, %v", s, err)
	}
	if v, err := id.ULong(); err != nil || v != 99 {
		t.Fatalf("inner ulong = %v, %v", v, err)
	}
}

func TestEncapsulationBadOrder(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutOctetSeq([]byte{9, 1, 2}) // order byte 9 is invalid
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.Encapsulation(); err == nil {
		t.Fatal("invalid encapsulation order accepted")
	}
}

// Property: every (value-sequence, order) round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	prop := func(oc byte, b bool, s int16, us uint16, l int32, ul uint32, ll int64, ull uint64, f float64, str string, seq []byte, little bool) bool {
		order := BigEndian
		if little {
			order = LittleEndian
		}
		// CORBA strings cannot contain NUL.
		clean := make([]rune, 0, len(str))
		for _, r := range str {
			if r != 0 {
				clean = append(clean, r)
			}
		}
		str = string(clean)

		e := NewEncoder(order)
		e.PutOctet(oc)
		e.PutBool(b)
		e.PutShort(s)
		e.PutUShort(us)
		e.PutLong(l)
		e.PutULong(ul)
		e.PutLongLong(ll)
		e.PutULongLong(ull)
		e.PutDouble(f)
		e.PutString(str)
		e.PutOctetSeq(seq)

		d := NewDecoder(e.Bytes(), order)
		oc2, _ := d.Octet()
		b2, _ := d.Bool()
		s2, _ := d.Short()
		us2, _ := d.UShort()
		l2, _ := d.Long()
		ul2, _ := d.ULong()
		ll2, _ := d.LongLong()
		ull2, _ := d.ULongLong()
		f2, _ := d.Double()
		str2, _ := d.String()
		seq2, err := d.OctetSeq()
		if err != nil {
			return false
		}
		return oc2 == oc && b2 == b && s2 == s && us2 == us && l2 == l &&
			ul2 == ul && ll2 == ll && ull2 == ull &&
			(f2 == f || (f2 != f2 && f != f)) && // NaN-safe
			str2 == str && bytes.Equal(seq2, seq) && d.Remaining() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary input.
func TestDecoderRobustness(t *testing.T) {
	prop := func(data []byte, little bool) bool {
		order := BigEndian
		if little {
			order = LittleEndian
		}
		d := NewDecoder(data, order)
		for d.Remaining() > 0 {
			before := d.Pos()
			if _, err := d.String(); err != nil {
				if _, err := d.ULong(); err != nil {
					if _, err := d.Octet(); err != nil {
						return true
					}
				}
			}
			if d.Pos() == before {
				// No progress would loop forever; that itself is a bug.
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
