// Package cdr implements CORBA Common Data Representation marshalling:
// the aligned, endian-tagged binary encoding GIOP messages carry. Unlike
// the simulated substrates in this repository, CDR is implemented for
// real — encoders produce actual wire bytes and decoders parse them, with
// the natural-boundary alignment rules of the CORBA specification
// (2-byte types on 2-byte boundaries, 4 on 4, 8 on 8).
package cdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ByteOrder selects the encoding endianness. GIOP marks the byte order
// per message, so both are supported.
type ByteOrder byte

const (
	// BigEndian is the canonical network order.
	BigEndian ByteOrder = 0
	// LittleEndian is the order most of the paper's x86 testbed used.
	LittleEndian ByteOrder = 1
)

func (o ByteOrder) order() binary.ByteOrder {
	if o == LittleEndian {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

// Order returns the corresponding encoding/binary byte order, for callers
// that need to patch already-encoded bytes (the GIOP size field).
func (o ByteOrder) Order() binary.ByteOrder { return o.order() }

func (o ByteOrder) String() string {
	if o == LittleEndian {
		return "little-endian"
	}
	return "big-endian"
}

// Errors returned by the decoder.
var (
	// ErrTruncated means the buffer ended inside a value.
	ErrTruncated = errors.New("cdr: truncated buffer")
	// ErrInvalid means a structurally invalid encoding (bad bool octet,
	// unterminated string, negative length).
	ErrInvalid = errors.New("cdr: invalid encoding")
)

// Encoder builds a CDR stream. The zero value encodes big-endian from
// offset 0; use NewEncoder to choose byte order.
type Encoder struct {
	buf   []byte
	order ByteOrder
}

// NewEncoder returns an encoder using the given byte order.
func NewEncoder(order ByteOrder) *Encoder {
	return &Encoder{order: order}
}

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Order returns the encoder's byte order.
func (e *Encoder) Order() ByteOrder { return e.order }

// align pads with zero bytes to an n-byte boundary.
func (e *Encoder) align(n int) {
	for len(e.buf)%n != 0 {
		e.buf = append(e.buf, 0)
	}
}

// PutOctet appends one raw byte.
func (e *Encoder) PutOctet(v byte) { e.buf = append(e.buf, v) }

// PutBool appends a boolean as one octet (0 or 1).
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutOctet(1)
	} else {
		e.PutOctet(0)
	}
}

// PutShort appends a 16-bit signed integer.
func (e *Encoder) PutShort(v int16) { e.PutUShort(uint16(v)) }

// PutUShort appends a 16-bit unsigned integer.
func (e *Encoder) PutUShort(v uint16) {
	e.align(2)
	var b [2]byte
	e.order.order().PutUint16(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// PutLong appends a 32-bit signed integer (CORBA "long").
func (e *Encoder) PutLong(v int32) { e.PutULong(uint32(v)) }

// PutULong appends a 32-bit unsigned integer.
func (e *Encoder) PutULong(v uint32) {
	e.align(4)
	var b [4]byte
	e.order.order().PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// PutLongLong appends a 64-bit signed integer.
func (e *Encoder) PutLongLong(v int64) { e.PutULongLong(uint64(v)) }

// PutULongLong appends a 64-bit unsigned integer.
func (e *Encoder) PutULongLong(v uint64) {
	e.align(8)
	var b [8]byte
	e.order.order().PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// PutFloat appends a 32-bit IEEE float.
func (e *Encoder) PutFloat(v float32) { e.PutULong(math.Float32bits(v)) }

// PutDouble appends a 64-bit IEEE float.
func (e *Encoder) PutDouble(v float64) { e.PutULongLong(math.Float64bits(v)) }

// PutString appends a CORBA string: ulong length including the NUL
// terminator, the bytes, then the NUL.
func (e *Encoder) PutString(s string) {
	e.PutULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// PutOctetSeq appends a sequence<octet>: ulong count then raw bytes.
func (e *Encoder) PutOctetSeq(b []byte) {
	e.PutULong(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutEncapsulation appends an encapsulated CDR stream: an octet sequence
// whose first byte is the inner byte order.
func (e *Encoder) PutEncapsulation(inner *Encoder) {
	body := make([]byte, 0, inner.Len()+1)
	body = append(body, byte(inner.order))
	body = append(body, inner.Bytes()...)
	e.PutOctetSeq(body)
}

// Decoder parses a CDR stream. Alignment is tracked from the start of
// the buffer, matching how GIOP bodies are decoded in place.
type Decoder struct {
	buf   []byte
	pos   int
	order ByteOrder
}

// NewDecoder returns a decoder over buf using the given byte order.
func NewDecoder(buf []byte, order ByteOrder) *Decoder {
	return &Decoder{buf: buf, order: order}
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Pos returns the read cursor.
func (d *Decoder) Pos() int { return d.pos }

func (d *Decoder) align(n int) {
	for d.pos%n != 0 {
		d.pos++
	}
}

func (d *Decoder) need(n int) error {
	if d.pos+n > len(d.buf) {
		return fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.pos, len(d.buf))
	}
	return nil
}

// Octet reads one raw byte.
func (d *Decoder) Octet() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

// Bool reads a boolean octet, rejecting values other than 0 and 1.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Octet()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: boolean octet %d", ErrInvalid, v)
	}
}

// Short reads a 16-bit signed integer.
func (d *Decoder) Short() (int16, error) {
	v, err := d.UShort()
	return int16(v), err
}

// UShort reads a 16-bit unsigned integer.
func (d *Decoder) UShort() (uint16, error) {
	d.align(2)
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := d.order.order().Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

// Long reads a 32-bit signed integer.
func (d *Decoder) Long() (int32, error) {
	v, err := d.ULong()
	return int32(v), err
}

// ULong reads a 32-bit unsigned integer.
func (d *Decoder) ULong() (uint32, error) {
	d.align(4)
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := d.order.order().Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

// LongLong reads a 64-bit signed integer.
func (d *Decoder) LongLong() (int64, error) {
	v, err := d.ULongLong()
	return int64(v), err
}

// ULongLong reads a 64-bit unsigned integer.
func (d *Decoder) ULongLong() (uint64, error) {
	d.align(8)
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := d.order.order().Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

// Float reads a 32-bit IEEE float.
func (d *Decoder) Float() (float32, error) {
	v, err := d.ULong()
	return math.Float32frombits(v), err
}

// Double reads a 64-bit IEEE float.
func (d *Decoder) Double() (float64, error) {
	v, err := d.ULongLong()
	return math.Float64frombits(v), err
}

// String reads a CORBA string.
func (d *Decoder) String() (string, error) {
	n, err := d.ULong()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", fmt.Errorf("%w: zero-length string (missing terminator)", ErrInvalid)
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	raw := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if raw[n-1] != 0 {
		return "", fmt.Errorf("%w: string missing NUL terminator", ErrInvalid)
	}
	return string(raw[:n-1]), nil
}

// OctetSeq reads a sequence<octet>. The returned slice is a copy.
func (d *Decoder) OctetSeq() ([]byte, error) {
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.buf[d.pos:d.pos+int(n)])
	d.pos += int(n)
	return out, nil
}

// Encapsulation reads an encapsulated stream and returns a decoder over
// its contents using the byte order tagged in its first octet.
func (d *Decoder) Encapsulation() (*Decoder, error) {
	body, err := d.OctetSeq()
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("%w: empty encapsulation", ErrInvalid)
	}
	order := ByteOrder(body[0])
	if order != BigEndian && order != LittleEndian {
		return nil, fmt.Errorf("%w: encapsulation byte order %d", ErrInvalid, body[0])
	}
	// The inner stream's alignment restarts after the order octet; CDR
	// encapsulations align relative to the start of the sequence body.
	// We conservatively re-base at offset 0 of the remaining bytes,
	// matching how PutEncapsulation produced it.
	return NewDecoder(body[1:], order), nil
}
