package cdr_test

import (
	"fmt"

	"repro/internal/cdr"
)

// Encoding and decoding a CDR stream with the alignment rules the GIOP
// wire format requires.
func ExampleEncoder() {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.PutOctet(1)       // offset 0
	e.PutULong(0xCAFE)  // aligns to offset 4
	e.PutString("giop") // length-prefixed, NUL-terminated
	e.PutOctetSeq([]byte{0xAA, 0xBB})

	d := cdr.NewDecoder(e.Bytes(), cdr.BigEndian)
	o, _ := d.Octet()
	u, _ := d.ULong()
	s, _ := d.String()
	b, _ := d.OctetSeq()
	fmt.Printf("octet=%d ulong=%#x string=%q seq=%x len=%d\n", o, u, s, b, e.Len())
	// Output:
	// octet=1 ulong=0xcafe string="giop" seq=aabb len=26
}
