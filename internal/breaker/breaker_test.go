package breaker

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drive pins the full closed → open → half-open → open (doubled
// cooldown) → half-open → closed journey against a manual clock.
func TestMachineStateJourney(t *testing.T) {
	now := int64(0)
	m := New(Config{Threshold: 3, Cooldown: 100, CooldownCap: 400},
		func() int64 { return now }, nil)

	// Below threshold the circuit stays closed; a success resets the run.
	m.Record("a", true)
	m.Record("a", true)
	m.Record("a", false)
	m.Record("a", true)
	m.Record("a", true)
	if got := m.State("a"); got != Closed {
		t.Fatalf("state after interrupted failure runs = %v, want closed", got)
	}

	// Threshold consecutive failures open it.
	if tr, changed := m.Record("a", true); !changed || tr.From != Closed || tr.To != Open {
		t.Fatalf("third failure transition = %+v changed=%v, want closed>open", tr, changed)
	}
	if ok, _, _ := m.Allow("a"); ok {
		t.Fatal("open circuit admitted traffic before cooldown")
	}

	// After the cooldown one probe is admitted (half-open), and only one.
	now = 100
	ok, tr, changed := m.Allow("a")
	if !ok || !changed || tr.To != HalfOpen {
		t.Fatalf("post-cooldown Allow = %v %+v %v, want probe admitted", ok, tr, changed)
	}
	if ok, _, _ := m.Allow("a"); ok {
		t.Fatal("half-open circuit admitted a second concurrent probe")
	}

	// Failed probe: open again with the cooldown doubled.
	if tr, changed := m.Record("a", true); !changed || tr.To != Open {
		t.Fatalf("failed probe transition = %+v changed=%v, want >open", tr, changed)
	}
	if got := m.Cooldown("a"); got != 200 {
		t.Fatalf("cooldown after failed probe = %v, want doubled to 200ns", got)
	}
	now = 250
	if ok, _, _ := m.Allow("a"); ok {
		t.Fatal("re-opened circuit admitted traffic before the doubled cooldown")
	}
	now = 300
	if ok, _, _ := m.Allow("a"); !ok {
		t.Fatal("doubled cooldown elapsed but probe refused")
	}

	// Successful probe: closed again, cooldown reset.
	if tr, changed := m.Record("a", false); !changed || tr.To != Closed {
		t.Fatalf("successful probe transition = %+v changed=%v, want >closed", tr, changed)
	}
	if got := m.Cooldown("a"); got != 100 {
		t.Fatalf("cooldown after recovery = %v, want reset to 100ns", got)
	}
}

// The cooldown doubling saturates at the cap, and jitter widens the
// probe instant by at most cooldown/4.
func TestMachineCooldownCapAndJitter(t *testing.T) {
	now := int64(0)
	jittered := 0
	m := New(Config{Threshold: 1, Cooldown: 100, CooldownCap: 150},
		func() int64 { return now },
		func(n int64) int64 { jittered++; return n - 1 })
	m.Record("a", true) // opens; probe at 100 + jitter(25)-ish
	if ok, _, _ := m.Allow("a"); ok {
		t.Fatal("admitted during jittered cooldown")
	}
	now = 124
	if ok, _, _ := m.Allow("a"); !ok {
		t.Fatal("probe refused after cooldown+jitter")
	}
	m.Record("a", true) // failed probe: cooldown doubles but caps at 150
	if got := m.Cooldown("a"); got != 150 {
		t.Fatalf("cooldown = %v, want capped at 150ns", got)
	}
	if jittered == 0 {
		t.Fatal("jitter source never consulted")
	}
}

// TestHalfOpenSingleProbeRace pins the single-probe guarantee under
// concurrency: N goroutines race Allow against an open circuit whose
// cooldown has elapsed, and exactly one must be admitted per half-open
// window. Run with -race, this is the regression test for the wire
// plane's failover path, where many caller goroutines share one machine
// and all hit the elapsed circuit at once.
func TestHalfOpenSingleProbeRace(t *testing.T) {
	const goroutines = 32
	const windows = 50
	m := New(Config{Threshold: 1, Cooldown: time.Nanosecond, CooldownCap: time.Nanosecond, ProbeTimeout: time.Hour},
		func() int64 { return time.Now().UnixNano() }, nil)

	// Open the circuit once; each window's failed probe re-opens it. The
	// 1ns cooldown has always elapsed by the time the goroutines race,
	// so every Allow sees an admissible open circuit.
	if tr, changed := m.Record("ep", true); !changed || tr.To != Open {
		t.Fatalf("opening transition = %+v changed=%v", tr, changed)
	}
	for w := 0; w < windows; w++ {
		var admitted atomic.Int32
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if ok, tr, changed := m.Allow("ep"); ok {
					admitted.Add(1)
					if !changed || tr.To != HalfOpen {
						t.Errorf("admitted probe without half-open transition: %+v changed=%v", tr, changed)
					}
				}
			}()
		}
		close(start)
		wg.Wait()
		if got := admitted.Load(); got != 1 {
			t.Fatalf("window %d: %d probes admitted, want exactly 1", w, got)
		}
		// Resolve the window: the failed probe re-opens the circuit for
		// the next iteration.
		if tr, changed := m.Record("ep", true); !changed || tr.To != Open {
			t.Fatalf("window %d: probe outcome = %+v changed=%v, want >open", w, tr, changed)
		}
	}
}

// TestHalfOpenProbeTimeoutRearms pins the stuck-probe recovery: a probe
// that never reports back must not wedge the circuit half-open forever;
// after ProbeTimeout the window re-arms and admits a fresh probe.
func TestHalfOpenProbeTimeoutRearms(t *testing.T) {
	now := int64(0)
	m := New(Config{Threshold: 1, Cooldown: 100, CooldownCap: 400, ProbeTimeout: 1000},
		func() int64 { return now }, nil)
	m.Record("a", true)
	now = 100
	if ok, _, _ := m.Allow("a"); !ok {
		t.Fatal("post-cooldown probe refused")
	}
	// The probe is lost: no Record ever arrives. Before the timeout the
	// window stays exclusive ...
	now = 1099
	if ok, _, _ := m.Allow("a"); ok {
		t.Fatal("second probe admitted before ProbeTimeout")
	}
	// ... and after it a replacement probe is admitted.
	now = 1100
	if ok, _, _ := m.Allow("a"); !ok {
		t.Fatal("replacement probe refused after ProbeTimeout")
	}
	// The replacement's success closes the circuit normally.
	if tr, changed := m.Record("a", false); !changed || tr.To != Closed {
		t.Fatalf("replacement probe success = %+v changed=%v, want >closed", tr, changed)
	}
}

// Endpoints are independent, and the machine tolerates concurrent use —
// the wire client's goroutines share one machine per destination.
func TestMachineConcurrent(t *testing.T) {
	m := New(Config{Threshold: 2, Cooldown: time.Hour, CooldownCap: time.Hour},
		func() int64 { return time.Now().UnixNano() }, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				m.Allow("sick")
				m.Record("sick", true)
				m.Allow("healthy")
				m.Record("healthy", false)
			}
		}()
	}
	wg.Wait()
	if got := m.State("sick"); got != Open {
		t.Fatalf("sick endpoint = %v, want open", got)
	}
	if got := m.State("healthy"); got != Closed {
		t.Fatalf("healthy endpoint = %v, want closed", got)
	}
}
