// Package breaker implements the client-side circuit-breaker state
// machine shared by the simulated ORB (internal/orb) and the
// real-socket wire plane (internal/wire). The machine itself is
// clock-agnostic: callers inject a nanosecond clock (the simulation
// kernel's virtual clock, or time.Now) and a jitter source (a seeded
// per-client stream for deterministic scenarios, or a real RNG), so the
// identical open/half-open/probe/cooldown-doubling behaviour governs
// both virtual-time failover experiments and live TCP reconnects.
//
// Behaviour (unchanged from the original internal/orb implementation):
// after Threshold consecutive classified failures to one endpoint its
// circuit opens and traffic is refused without spending an attempt.
// After a cooldown one probe is let through (half-open); success
// re-closes the circuit, failure re-opens it with the cooldown doubled
// (capped), so an endpoint that stays sick is probed at a decaying rate
// instead of hammered. Probe instants carry jitter in [0, cooldown/4)
// so distinct clients desynchronise their probes.
package breaker

import (
	"sync"
	"time"
)

// State is one endpoint's circuit state.
type State int

const (
	// Closed admits traffic normally.
	Closed State = iota
	// Open rejects traffic until the cooldown elapses.
	Open
	// HalfOpen has one probe invocation in flight; its outcome decides
	// between re-closing and re-opening.
	HalfOpen
)

// String returns the conventional state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Config parameterises a machine.
type Config struct {
	// Threshold is the number of consecutive classified failures to one
	// endpoint before its circuit opens.
	Threshold int
	// Cooldown is the initial open interval before a half-open probe is
	// allowed; it doubles on each failed probe up to CooldownCap.
	Cooldown time.Duration
	// CooldownCap bounds the doubled cooldown.
	CooldownCap time.Duration
	// ProbeTimeout bounds how long a half-open window waits for its
	// probe's outcome. A probe whose caller never reports back (an
	// abandoned call, a crashed prober goroutine) would otherwise wedge
	// the circuit half-open forever, refusing all traffic; after
	// ProbeTimeout the window re-arms and admits a fresh probe. Defaults
	// to CooldownCap (Cooldown if the cap is unset).
	ProbeTimeout time.Duration
}

// Transition records one circuit state change. At is in the injected
// clock's nanoseconds (virtual time under a simulation kernel, wall
// time under time.Now), so callers translate it into their own domain.
type Transition struct {
	At       int64
	Endpoint string
	From, To State
}

// entry is the per-endpoint circuit.
type entry struct {
	state    State
	fails    int           // consecutive classified failures while closed
	until    int64         // open: earliest instant a probe may go out
	cooldown time.Duration // current open interval (doubles on failed probes)
	// probeAt is the instant the current half-open probe was admitted;
	// a probe outstanding past ProbeTimeout is presumed lost and the
	// window re-arms.
	probeAt int64
}

// Machine tracks circuit state for a set of endpoints, keyed by an
// opaque endpoint string. It is safe for concurrent use: the wire
// plane's client goroutines share one machine per destination, while
// the simulated ORB drives it from the single kernel goroutine.
type Machine struct {
	mu      sync.Mutex
	cfg     Config
	now     func() int64
	jitter  func(n int64) int64
	entries map[string]*entry
}

// New creates a machine reading time from now (nanoseconds) and probe
// jitter from jitter (uniform in [0, n); nil disables jitter).
func New(cfg Config, now func() int64, jitter func(n int64) int64) *Machine {
	return &Machine{cfg: cfg, now: now, jitter: jitter, entries: make(map[string]*entry)}
}

func (m *Machine) entryFor(ep string) *entry {
	e, ok := m.entries[ep]
	if !ok {
		e = &entry{cooldown: m.cfg.Cooldown}
		m.entries[ep] = e
	}
	return e
}

// transition flips e to the given state and returns the record.
func (m *Machine) transition(ep string, e *entry, to State) Transition {
	tr := Transition{At: m.now(), Endpoint: ep, From: e.state, To: to}
	e.state = to
	return tr
}

// open moves the circuit to open, scheduling the next probe at cooldown
// plus jitter in [0, cooldown/4).
func (m *Machine) open(ep string, e *entry) Transition {
	j := int64(0)
	if m.jitter != nil && e.cooldown >= 4 {
		j = m.jitter(int64(e.cooldown / 4))
	}
	e.until = m.now() + int64(e.cooldown) + j
	return m.transition(ep, e, Open)
}

// Allow reports whether an invocation to ep may proceed. When an open
// circuit's cooldown has elapsed it flips to half-open and admits the
// calling invocation as the single probe; the resulting transition is
// returned with changed=true so callers can log it.
//
// The single-probe guarantee holds under concurrency: the state flip to
// HalfOpen happens under the machine lock, so of N goroutines racing
// Allow on an elapsed open circuit exactly one is admitted per
// half-open window — every other caller sees HalfOpen and is refused
// until the probe's outcome (or ProbeTimeout) resolves the window.
func (m *Machine) Allow(ep string) (ok bool, tr Transition, changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entryFor(ep)
	switch e.state {
	case Closed:
		return true, Transition{}, false
	case Open:
		if m.now() >= e.until {
			e.probeAt = m.now()
			return true, m.transition(ep, e, HalfOpen), true
		}
		return false, Transition{}, false
	default: // HalfOpen: the probe is already in flight
		if m.now() >= e.probeAt+int64(m.probeTimeout()) {
			// The probe's outcome never came back; re-arm the window and
			// admit this caller as the replacement probe.
			e.probeAt = m.now()
			return true, Transition{}, false
		}
		return false, Transition{}, false
	}
}

// probeTimeout returns the effective half-open probe timeout.
func (m *Machine) probeTimeout() time.Duration {
	if m.cfg.ProbeTimeout > 0 {
		return m.cfg.ProbeTimeout
	}
	if m.cfg.CooldownCap > 0 {
		return m.cfg.CooldownCap
	}
	return m.cfg.Cooldown
}

// Record feeds an invocation outcome (failed = a classified breaker
// failure; the caller decides classification) into ep's circuit. A
// resulting state change is returned with changed=true.
func (m *Machine) Record(ep string, failed bool) (tr Transition, changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entryFor(ep)
	switch e.state {
	case Closed:
		if !failed {
			e.fails = 0
			return Transition{}, false
		}
		e.fails++
		if e.fails >= m.cfg.Threshold {
			return m.open(ep, e), true
		}
		return Transition{}, false
	case HalfOpen:
		if failed {
			// Failed probe: back to open with the cooldown doubled.
			e.cooldown *= 2
			if e.cooldown > m.cfg.CooldownCap {
				e.cooldown = m.cfg.CooldownCap
			}
			return m.open(ep, e), true
		}
		// The endpoint recovered: admit traffic again from scratch.
		e.fails = 0
		e.cooldown = m.cfg.Cooldown
		return m.transition(ep, e, Closed), true
	default: // Open: a straggler outcome from before the circuit opened
		return Transition{}, false
	}
}

// State returns the circuit state for ep (Closed if never recorded).
func (m *Machine) State(ep string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[ep]; ok {
		return e.state
	}
	return Closed
}

// Cooldown returns ep's current open interval — Config.Cooldown until a
// probe fails, then doubled per failed probe up to the cap.
func (m *Machine) Cooldown(ep string) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[ep]; ok {
		return e.cooldown
	}
	return m.cfg.Cooldown
}
