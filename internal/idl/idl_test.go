package idl

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cdr"
)

// frameDescType is a realistic message type: the A/V service's frame
// descriptor.
func frameDescType() *Type {
	return StructOf("FrameDesc",
		F("seq", LongLong()),
		F("frame_type", ULong()),
		F("size", ULong()),
		F("keyframe", Bool()),
		F("tags", Sequence(String())),
	)
}

func sampleFrameDesc() []any {
	return []any{int64(42), uint32(1), uint32(13900), true, []any{"uav", "mpeg1"}}
}

func TestInterpretiveRoundTrip(t *testing.T) {
	typ := frameDescType()
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		buf, err := Encode(order, typ, sampleFrameDesc())
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		got, err := Decode(order, typ, buf)
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		fields := got.([]any)
		if fields[0] != int64(42) || fields[1] != uint32(1) ||
			fields[2] != uint32(13900) || fields[3] != true {
			t.Fatalf("fields = %v", fields)
		}
		tags := fields[4].([]any)
		if len(tags) != 2 || tags[0] != "uav" || tags[1] != "mpeg1" {
			t.Fatalf("tags = %v", tags)
		}
	}
}

func TestAllPrimitives(t *testing.T) {
	cases := []struct {
		t *Type
		v any
	}{
		{Octet(), byte(7)}, {Bool(), true}, {Short(), int16(-5)},
		{UShort(), uint16(9)}, {Long(), int32(-100000)}, {ULong(), uint32(1 << 30)},
		{LongLong(), int64(-1 << 60)}, {ULongLong(), uint64(1 << 62)},
		{Float(), float32(1.5)}, {Double(), 2.25}, {String(), "hi"},
	}
	for _, c := range cases {
		buf, err := Encode(cdr.LittleEndian, c.t, c.v)
		if err != nil {
			t.Fatalf("%v: %v", c.t.Kind, err)
		}
		got, err := Decode(cdr.LittleEndian, c.t, buf)
		if err != nil {
			t.Fatalf("%v: %v", c.t.Kind, err)
		}
		if got != c.v {
			t.Fatalf("%v: got %v want %v", c.t.Kind, got, c.v)
		}
	}
}

func TestNestedStructures(t *testing.T) {
	point := StructOf("Point", F("x", Double()), F("y", Double()))
	path := StructOf("Path", F("name", String()), F("points", Sequence(point)))
	v := []any{"route-7", []any{
		[]any{1.0, 2.0},
		[]any{3.0, 4.0},
	}}
	buf, err := Encode(cdr.BigEndian, path, v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(cdr.BigEndian, path, buf)
	if err != nil {
		t.Fatal(err)
	}
	fields := got.([]any)
	pts := fields[1].([]any)
	if fields[0] != "route-7" || len(pts) != 2 {
		t.Fatalf("got %v", got)
	}
	if pts[1].([]any)[1] != 4.0 {
		t.Fatalf("points = %v", pts)
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	cases := []struct {
		t *Type
		v any
	}{
		{Long(), "not a long"},
		{String(), int32(1)},
		{Sequence(Long()), int32(1)},
		{StructOf("S", F("a", Long())), []any{}},               // wrong arity
		{StructOf("S", F("a", Long())), []any{"wrong type"}},   // bad field
		{Sequence(Long()), []any{int32(1), "mixed", int32(3)}}, // bad element
	}
	for _, c := range cases {
		if _, err := Encode(cdr.LittleEndian, c.t, c.v); !errors.Is(err, ErrTypeMismatch) {
			t.Errorf("%v/%T: err = %v", c.t.Kind, c.v, err)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	buf, _ := Encode(cdr.LittleEndian, Long(), int32(5))
	buf = append(buf, 0xFF)
	if _, err := Decode(cdr.LittleEndian, Long(), buf); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeRejectsAbsurdSequenceCount(t *testing.T) {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.PutULong(1 << 30) // claims a billion elements
	if _, err := Decode(cdr.LittleEndian, Sequence(Octet()), e.Bytes()); err == nil {
		t.Fatal("absurd count accepted")
	}
}

// compiledFrameDesc is the hand-written ("compiled stub") counterpart of
// frameDescType, used to verify wire compatibility between the paths.
type compiledFrameDesc struct {
	Seq       int64
	FrameType uint32
	Size      uint32
	Keyframe  bool
	Tags      []string
}

var _ Compiled = (*compiledFrameDesc)(nil)

func (f *compiledFrameDesc) MarshalCDR(e *cdr.Encoder) {
	e.PutLongLong(f.Seq)
	e.PutULong(f.FrameType)
	e.PutULong(f.Size)
	e.PutBool(f.Keyframe)
	e.PutULong(uint32(len(f.Tags)))
	for _, tag := range f.Tags {
		e.PutString(tag)
	}
}

func (f *compiledFrameDesc) UnmarshalCDR(d *cdr.Decoder) error {
	var err error
	if f.Seq, err = d.LongLong(); err != nil {
		return err
	}
	if f.FrameType, err = d.ULong(); err != nil {
		return err
	}
	if f.Size, err = d.ULong(); err != nil {
		return err
	}
	if f.Keyframe, err = d.Bool(); err != nil {
		return err
	}
	n, err := d.ULong()
	if err != nil {
		return err
	}
	f.Tags = make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := d.String()
		if err != nil {
			return err
		}
		f.Tags = append(f.Tags, s)
	}
	return nil
}

func TestCompiledAndInterpretiveWireCompatible(t *testing.T) {
	// Both paths must produce identical bytes for the same value.
	compiled := &compiledFrameDesc{Seq: 42, FrameType: 1, Size: 13900, Keyframe: true, Tags: []string{"uav", "mpeg1"}}
	e := cdr.NewEncoder(cdr.LittleEndian)
	compiled.MarshalCDR(e)
	compiledBytes := e.Bytes()

	interpBytes, err := Encode(cdr.LittleEndian, frameDescType(), sampleFrameDesc())
	if err != nil {
		t.Fatal(err)
	}
	if string(compiledBytes) != string(interpBytes) {
		t.Fatalf("wire formats differ:\ncompiled:     %v\ninterpretive: %v", compiledBytes, interpBytes)
	}
	// And each path decodes the other's output.
	var back compiledFrameDesc
	if err := back.UnmarshalCDR(cdr.NewDecoder(interpBytes, cdr.LittleEndian)); err != nil {
		t.Fatal(err)
	}
	if back.Seq != 42 || len(back.Tags) != 2 {
		t.Fatalf("compiled decode of interpretive bytes: %+v", back)
	}
	if _, err := Decode(cdr.LittleEndian, frameDescType(), compiledBytes); err != nil {
		t.Fatal(err)
	}
}

// Property: interpretive round trips preserve arbitrary flat structs.
func TestPropertyInterpretiveRoundTrip(t *testing.T) {
	typ := StructOf("P",
		F("a", Long()), F("b", Double()), F("c", Bool()), F("d", UShort()))
	prop := func(a int32, b float64, c bool, d uint16) bool {
		if b != b { // NaN: CDR carries it but == fails; skip
			return true
		}
		buf, err := Encode(cdr.BigEndian, typ, []any{a, b, c, d})
		if err != nil {
			return false
		}
		got, err := Decode(cdr.BigEndian, typ, buf)
		if err != nil {
			return false
		}
		fs := got.([]any)
		return fs[0] == a && fs[1] == b && fs[2] == c && fs[3] == d
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The time/space tradeoff the paper describes: compiled marshalling is
// measurably faster than the interpretive engine for the same type.
func BenchmarkCompiledMarshal(b *testing.B) {
	f := &compiledFrameDesc{Seq: 42, FrameType: 1, Size: 13900, Keyframe: true, Tags: []string{"uav", "mpeg1"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := cdr.NewEncoder(cdr.LittleEndian)
		f.MarshalCDR(e)
	}
}

func BenchmarkInterpretiveMarshal(b *testing.B) {
	typ := frameDescType()
	v := sampleFrameDesc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := cdr.NewEncoder(cdr.LittleEndian)
		if err := Marshal(e, typ, v); err != nil {
			b.Fatal(err)
		}
	}
}
