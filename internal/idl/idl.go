// Package idl provides the two marshalling styles the paper credits to
// TAO's IDL compiler: compiled stubs (hand-written per-type code, fast
// but larger) and interpretive marshalling (a single engine walking a
// type descriptor, compact but slower). Applications choose per type,
// trading time against space exactly as the paper describes.
//
// A type is described by a Type tree built with the constructor
// functions (Octet, Long, String, Sequence, StructOf, ...). The
// interpretive engine marshals Go values against a descriptor:
//
//	octet       -> byte          ulonglong -> uint64
//	boolean     -> bool          float     -> float32
//	short       -> int16         double    -> float64
//	ushort      -> uint16        string    -> string
//	long        -> int32         sequence  -> []any
//	ulong       -> uint32        struct    -> []any (fields in order)
//	longlong    -> int64
//
// Compiled types implement the Compiled interface instead.
package idl

import (
	"errors"
	"fmt"

	"repro/internal/cdr"
)

// Kind enumerates descriptor node kinds.
type Kind int

// Descriptor kinds.
const (
	KOctet Kind = iota + 1
	KBool
	KShort
	KUShort
	KLong
	KULong
	KLongLong
	KULongLong
	KFloat
	KDouble
	KString
	KSequence
	KStruct
)

func (k Kind) String() string {
	names := map[Kind]string{
		KOctet: "octet", KBool: "boolean", KShort: "short", KUShort: "ushort",
		KLong: "long", KULong: "ulong", KLongLong: "longlong",
		KULongLong: "ulonglong", KFloat: "float", KDouble: "double",
		KString: "string", KSequence: "sequence", KStruct: "struct",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Type is one node of a type descriptor tree.
type Type struct {
	Kind   Kind
	Name   string  // struct name, for diagnostics
	Elem   *Type   // sequence element type
	Fields []Field // struct fields, in declaration order
}

// Field is a named struct member.
type Field struct {
	Name string
	Type *Type
}

// Constructor helpers.
func Octet() *Type     { return &Type{Kind: KOctet} }
func Bool() *Type      { return &Type{Kind: KBool} }
func Short() *Type     { return &Type{Kind: KShort} }
func UShort() *Type    { return &Type{Kind: KUShort} }
func Long() *Type      { return &Type{Kind: KLong} }
func ULong() *Type     { return &Type{Kind: KULong} }
func LongLong() *Type  { return &Type{Kind: KLongLong} }
func ULongLong() *Type { return &Type{Kind: KULongLong} }
func Float() *Type     { return &Type{Kind: KFloat} }
func Double() *Type    { return &Type{Kind: KDouble} }
func String() *Type    { return &Type{Kind: KString} }

// Sequence describes sequence<elem>.
func Sequence(elem *Type) *Type { return &Type{Kind: KSequence, Elem: elem} }

// StructOf describes a struct with the given ordered fields.
func StructOf(name string, fields ...Field) *Type {
	return &Type{Kind: KStruct, Name: name, Fields: fields}
}

// F builds a Field.
func F(name string, t *Type) Field { return Field{Name: name, Type: t} }

// ErrTypeMismatch reports a value/descriptor disagreement.
var ErrTypeMismatch = errors.New("idl: value does not match descriptor")

func mismatch(t *Type, v any) error {
	return fmt.Errorf("%w: %v got %T", ErrTypeMismatch, t.Kind, v)
}

// Marshal appends v, described by t, to the encoder (interpretive path).
func Marshal(e *cdr.Encoder, t *Type, v any) error {
	switch t.Kind {
	case KOctet:
		x, ok := v.(byte)
		if !ok {
			return mismatch(t, v)
		}
		e.PutOctet(x)
	case KBool:
		x, ok := v.(bool)
		if !ok {
			return mismatch(t, v)
		}
		e.PutBool(x)
	case KShort:
		x, ok := v.(int16)
		if !ok {
			return mismatch(t, v)
		}
		e.PutShort(x)
	case KUShort:
		x, ok := v.(uint16)
		if !ok {
			return mismatch(t, v)
		}
		e.PutUShort(x)
	case KLong:
		x, ok := v.(int32)
		if !ok {
			return mismatch(t, v)
		}
		e.PutLong(x)
	case KULong:
		x, ok := v.(uint32)
		if !ok {
			return mismatch(t, v)
		}
		e.PutULong(x)
	case KLongLong:
		x, ok := v.(int64)
		if !ok {
			return mismatch(t, v)
		}
		e.PutLongLong(x)
	case KULongLong:
		x, ok := v.(uint64)
		if !ok {
			return mismatch(t, v)
		}
		e.PutULongLong(x)
	case KFloat:
		x, ok := v.(float32)
		if !ok {
			return mismatch(t, v)
		}
		e.PutFloat(x)
	case KDouble:
		x, ok := v.(float64)
		if !ok {
			return mismatch(t, v)
		}
		e.PutDouble(x)
	case KString:
		x, ok := v.(string)
		if !ok {
			return mismatch(t, v)
		}
		e.PutString(x)
	case KSequence:
		xs, ok := v.([]any)
		if !ok {
			return mismatch(t, v)
		}
		e.PutULong(uint32(len(xs)))
		for i, x := range xs {
			if err := Marshal(e, t.Elem, x); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
	case KStruct:
		xs, ok := v.([]any)
		if !ok {
			return mismatch(t, v)
		}
		if len(xs) != len(t.Fields) {
			return fmt.Errorf("%w: struct %s has %d fields, value has %d",
				ErrTypeMismatch, t.Name, len(t.Fields), len(xs))
		}
		for i, f := range t.Fields {
			if err := Marshal(e, f.Type, xs[i]); err != nil {
				return fmt.Errorf("%s.%s: %w", t.Name, f.Name, err)
			}
		}
	default:
		return fmt.Errorf("idl: unknown kind %v", t.Kind)
	}
	return nil
}

// Unmarshal decodes one value described by t (interpretive path).
func Unmarshal(d *cdr.Decoder, t *Type) (any, error) {
	switch t.Kind {
	case KOctet:
		return d.Octet()
	case KBool:
		return d.Bool()
	case KShort:
		return d.Short()
	case KUShort:
		return d.UShort()
	case KLong:
		return d.Long()
	case KULong:
		return d.ULong()
	case KLongLong:
		return d.LongLong()
	case KULongLong:
		return d.ULongLong()
	case KFloat:
		return d.Float()
	case KDouble:
		return d.Double()
	case KString:
		return d.String()
	case KSequence:
		n, err := d.ULong()
		if err != nil {
			return nil, err
		}
		if int(n) > d.Remaining() {
			// Each element needs at least one byte; reject absurd counts
			// before allocating.
			return nil, fmt.Errorf("%w: sequence count %d exceeds buffer", cdr.ErrInvalid, n)
		}
		out := make([]any, 0, n)
		for i := uint32(0); i < n; i++ {
			x, err := Unmarshal(d, t.Elem)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out = append(out, x)
		}
		return out, nil
	case KStruct:
		out := make([]any, 0, len(t.Fields))
		for _, f := range t.Fields {
			x, err := Unmarshal(d, f.Type)
			if err != nil {
				return nil, fmt.Errorf("%s.%s: %w", t.Name, f.Name, err)
			}
			out = append(out, x)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("idl: unknown kind %v", t.Kind)
	}
}

// Compiled is implemented by types with hand-written (compiled-stub
// style) marshalling — the fast path.
type Compiled interface {
	MarshalCDR(e *cdr.Encoder)
	UnmarshalCDR(d *cdr.Decoder) error
}

// Encode is a convenience wrapper producing bytes from a descriptor and
// value in one call.
func Encode(order cdr.ByteOrder, t *Type, v any) ([]byte, error) {
	e := cdr.NewEncoder(order)
	if err := Marshal(e, t, v); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

// Decode is the inverse of Encode.
func Decode(order cdr.ByteOrder, t *Type, buf []byte) (any, error) {
	d := cdr.NewDecoder(buf, order)
	v, err := Unmarshal(d, t)
	if err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", cdr.ErrInvalid, d.Remaining())
	}
	return v, nil
}
