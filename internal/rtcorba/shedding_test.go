package rtcorba

import (
	"testing"
	"time"

	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/trace/telemetry"
)

// TestRejectLowestFirstEviction pins the shedding policy: a
// higher-priority arrival at a full lane evicts the lowest-priority
// queued item (with its Shed callback told why) instead of being
// refused.
func TestRejectLowestFirstEviction(t *testing.T) {
	k := sim.NewKernel(1)
	h := rtos.NewHost(k, "h", rtos.HostConfig{})
	tp, err := NewThreadPool(h, NewMappingManager(),
		LaneConfig{Priority: 0, Threads: 1, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	block := func(t *rtos.Thread) { t.Compute(time.Second) }
	var evictedPrio Priority = -1
	var evictedReason ShedReason
	// Fill the queue with priorities 10 and 20.
	for _, p := range []Priority{10, 20} {
		p := p
		ok := tp.Dispatch(Work{Priority: p, Fn: block, Shed: func(r ShedReason) {
			evictedPrio, evictedReason = p, r
		}})
		if !ok {
			t.Fatalf("initial dispatch at priority %d refused", p)
		}
	}
	// An equal-priority arrival must not evict.
	if tp.Dispatch(Work{Priority: 10, Fn: block}) {
		t.Fatal("equal-priority arrival admitted to a full lane")
	}
	// A higher-priority arrival evicts the priority-10 item.
	if !tp.Dispatch(Work{Priority: 30, Fn: block}) {
		t.Fatal("higher-priority arrival refused despite evictable victim")
	}
	if evictedPrio != 10 || evictedReason != ShedEvicted {
		t.Fatalf("evicted priority %d reason %v, want 10 evicted", evictedPrio, evictedReason)
	}
	if tp.ShedEvicted(0) != 1 || tp.Refused(0) != 1 {
		t.Fatalf("shedEvicted=%d refused=%d, want 1/1", tp.ShedEvicted(0), tp.Refused(0))
	}
	k.RunUntil(10 * time.Second)
}

// TestWatermarkAdmissionControl pins the watermark: a flood of
// equal-priority work stabilises at the watermark, while strictly
// higher-priority work is still admitted up to the hard limit.
func TestWatermarkAdmissionControl(t *testing.T) {
	k := sim.NewKernel(1)
	h := rtos.NewHost(k, "h", rtos.HostConfig{})
	tp, err := NewThreadPool(h, NewMappingManager(),
		LaneConfig{Priority: 0, Threads: 1, QueueLimit: 8, HighWatermark: 4})
	if err != nil {
		t.Fatal(err)
	}
	block := func(t *rtos.Thread) { t.Compute(time.Second) }
	admitted := 0
	for i := 0; i < 10; i++ {
		if tp.Dispatch(Work{Priority: 5, Fn: block}) {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("flood admitted %d, want 4 (watermark)", admitted)
	}
	// Higher-priority arrivals pass the watermark gate.
	for i := 0; i < 4; i++ {
		if !tp.Dispatch(Work{Priority: 100, Fn: block}) {
			t.Fatalf("high-priority arrival %d refused below hard limit", i)
		}
	}
	if got := tp.QueueDepth(0); got != 8 {
		t.Fatalf("queue depth = %d, want 8", got)
	}
	k.RunUntil(20 * time.Second)
}

// TestWatermarkValidation rejects a watermark above the hard limit.
func TestWatermarkValidation(t *testing.T) {
	k := sim.NewKernel(1)
	h := rtos.NewHost(k, "h", rtos.HostConfig{})
	if _, err := NewThreadPool(h, NewMappingManager(),
		LaneConfig{Priority: 0, Threads: 1, QueueLimit: 4, HighWatermark: 5}); err == nil {
		t.Fatal("watermark above queue limit accepted")
	}
}

// TestDeadlineShedAtDequeue pins the budget check: work whose deadline
// expired while queued is shed (callback, counter) instead of executed.
func TestDeadlineShedAtDequeue(t *testing.T) {
	k := sim.NewKernel(1)
	h := rtos.NewHost(k, "h", rtos.HostConfig{})
	tp, err := NewSingleLanePool(h, NewMappingManager(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tp.SetTelemetry(reg)
	ran, shed := 0, 0
	var shedReason ShedReason
	// First item occupies the thread for 100ms; the second has a 10ms
	// deadline and must be shed when the thread frees up at t=100ms.
	tp.Dispatch(Work{Priority: 0, Fn: func(t *rtos.Thread) { t.Compute(100 * time.Millisecond) }})
	tp.Dispatch(Work{
		Priority: 0,
		Deadline: sim.Time(10 * time.Millisecond),
		Fn:       func(t *rtos.Thread) { ran++ },
		Shed:     func(r ShedReason) { shed++; shedReason = r },
	})
	// A third item with a generous deadline still runs.
	ranLate := 0
	tp.Dispatch(Work{
		Priority: 0,
		Deadline: sim.Time(time.Second),
		Fn:       func(t *rtos.Thread) { ranLate++ },
	})
	k.RunUntil(2 * time.Second)
	if ran != 0 || shed != 1 || shedReason != ShedDeadline {
		t.Fatalf("ran=%d shed=%d reason=%v, want 0/1/deadline", ran, shed, shedReason)
	}
	if ranLate != 1 {
		t.Fatal("in-budget work was not executed")
	}
	if tp.ShedDeadline(0) != 1 || tp.Shed(0) != 1 {
		t.Fatalf("ShedDeadline=%d Shed=%d, want 1/1", tp.ShedDeadline(0), tp.Shed(0))
	}
	if got := reg.Counter("pool.shed", telemetry.L("lane", "0"), telemetry.L("reason", "deadline")).Value(); got != 1 {
		t.Fatalf("telemetry pool.shed = %v, want 1", got)
	}
}
