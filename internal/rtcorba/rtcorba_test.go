package rtcorba

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/rtos"
	"repro/internal/sim"
)

func TestLinearMappingEndpoints(t *testing.T) {
	m := LinearMapping{}
	for _, r := range []rtos.PriorityRange{rtos.RangeQNX, rtos.RangeLynxOS, rtos.RangeSolaris, rtos.RangeLinux} {
		lo, ok := m.ToNative(MinPriority, r)
		if !ok || lo != r.Min {
			t.Fatalf("range %v: ToNative(0) = %d, %v", r, lo, ok)
		}
		hi, ok := m.ToNative(MaxPriority, r)
		if !ok || hi != r.Max {
			t.Fatalf("range %v: ToNative(32767) = %d, %v", r, hi, ok)
		}
	}
}

func TestLinearMappingMonotone(t *testing.T) {
	m := LinearMapping{}
	prop := func(a, b uint16, spanSel uint8) bool {
		pa := Priority(a % 32768)
		pb := Priority(b % 32768)
		r := rtos.PriorityRange{Min: 0, Max: rtos.Priority(spanSel%200) + 1}
		na, _ := m.ToNative(pa, r)
		nb, _ := m.ToNative(pb, r)
		if pa <= pb {
			return na <= nb
		}
		return na >= nb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearMappingRoundTripClose(t *testing.T) {
	// ToCORBA(ToNative(p)) must be within one native step of p.
	m := LinearMapping{}
	r := rtos.RangeLynxOS
	step := int(MaxPriority) / (r.Span() - 1)
	for pi := 0; pi <= int(MaxPriority); pi += 1000 {
		p := Priority(pi)
		n, ok := m.ToNative(p, r)
		if !ok {
			t.Fatalf("ToNative(%d) failed", p)
		}
		back, ok := m.ToCORBA(n, r)
		if !ok {
			t.Fatalf("ToCORBA(%d) failed", n)
		}
		diff := int(back) - int(p)
		if diff < 0 {
			diff = -diff
		}
		if diff > step {
			t.Fatalf("round trip %d -> %d -> %d drifts more than one step (%d)", p, n, back, step)
		}
	}
}

func TestLinearMappingRejectsOutOfRange(t *testing.T) {
	m := LinearMapping{}
	if _, ok := m.ToNative(-1, rtos.RangeQNX); ok {
		t.Fatal("negative CORBA priority mapped")
	}
	if _, ok := m.ToCORBA(99, rtos.RangeQNX); ok {
		t.Fatal("out-of-range native priority mapped")
	}
}

func TestStepMapping(t *testing.T) {
	m := StepMapping{Steps: []Step{
		{From: 0, Native: 5},
		{From: 10000, Native: 16},
		{From: 25000, Native: 30},
	}}
	r := rtos.RangeQNX
	cases := []struct {
		p    Priority
		want rtos.Priority
	}{
		{0, 5}, {9999, 5}, {10000, 16}, {24999, 16}, {25000, 30}, {32767, 30},
	}
	for _, c := range cases {
		got, ok := m.ToNative(c.p, r)
		if !ok || got != c.want {
			t.Fatalf("ToNative(%d) = %d, %v; want %d", c.p, got, ok, c.want)
		}
	}
	if back, ok := m.ToCORBA(16, r); !ok || back != 10000 {
		t.Fatalf("ToCORBA(16) = %d, %v", back, ok)
	}
}

func TestMappingManagerInstall(t *testing.T) {
	mm := NewMappingManager()
	if _, ok := mm.Mapping().(LinearMapping); !ok {
		t.Fatalf("default mapping = %T", mm.Mapping())
	}
	custom := StepMapping{Steps: []Step{{From: 0, Native: 16}}}
	mm.Install(custom)
	n, ok := mm.ToNative(100, rtos.RangeQNX)
	if !ok || n != 16 {
		t.Fatalf("custom mapping: ToNative(100) = %d, %v", n, ok)
	}
	mm.Install(nil)
	if _, ok := mm.Mapping().(LinearMapping); !ok {
		t.Fatal("Install(nil) did not restore the default")
	}
}

func TestBandedDSCPMapping(t *testing.T) {
	m := BandedDSCPMapping{Bands: []DSCPBand{
		{From: 0, DSCP: netsim.DSCPBestEffort},
		{From: 5000, DSCP: netsim.DSCPAF11},
		{From: 20000, DSCP: netsim.DSCPEF},
	}}
	cases := []struct {
		p    Priority
		want netsim.DSCP
	}{
		{0, netsim.DSCPBestEffort}, {4999, netsim.DSCPBestEffort},
		{5000, netsim.DSCPAF11}, {19999, netsim.DSCPAF11},
		{20000, netsim.DSCPEF}, {32767, netsim.DSCPEF},
	}
	for _, c := range cases {
		if got := m.ToDSCP(c.p); got != c.want {
			t.Fatalf("ToDSCP(%d) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := (BestEffortMapping{}).ToDSCP(32767); got != netsim.DSCPBestEffort {
		t.Fatalf("best effort mapping = %v", got)
	}
}

func TestThreadPoolLaneSelection(t *testing.T) {
	k := sim.NewKernel(1)
	h := rtos.NewHost(k, "h", rtos.HostConfig{})
	tp, err := NewThreadPool(h, NewMappingManager(),
		LaneConfig{Priority: 0, Threads: 1},
		LaneConfig{Priority: 16000, Threads: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	var lane0, lane1 int
	mk := func(counter *int) func(*rtos.Thread) {
		return func(t *rtos.Thread) { *counter++ }
	}
	tp.Dispatch(Work{Priority: 100, Fn: mk(&lane0)})
	tp.Dispatch(Work{Priority: 15999, Fn: mk(&lane0)})
	tp.Dispatch(Work{Priority: 16000, Fn: mk(&lane1)})
	tp.Dispatch(Work{Priority: 32767, Fn: mk(&lane1)})
	k.RunUntil(time.Second)
	if lane0 != 2 || lane1 != 2 {
		t.Fatalf("lane work split = %d/%d, want 2/2", lane0, lane1)
	}
	if tp.Served(0) != 2 || tp.Served(1) != 2 {
		t.Fatalf("served = %d/%d", tp.Served(0), tp.Served(1))
	}
}

func TestThreadPoolRunsAtRequestPriority(t *testing.T) {
	k := sim.NewKernel(1)
	h := rtos.NewHost(k, "h", rtos.HostConfig{})
	mm := NewMappingManager()
	tp, err := NewSingleLanePool(h, mm, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var observed rtos.Priority
	tp.Dispatch(Work{Priority: 32767, Fn: func(t *rtos.Thread) {
		observed = t.Priority()
	}})
	k.RunUntil(time.Second)
	want, _ := mm.ToNative(32767, h.Priorities())
	if observed != want {
		t.Fatalf("dispatch ran at native %d, want %d", observed, want)
	}
}

func TestThreadPoolBoundedQueueRefuses(t *testing.T) {
	k := sim.NewKernel(1)
	h := rtos.NewHost(k, "h", rtos.HostConfig{})
	tp, err := NewThreadPool(h, NewMappingManager(),
		LaneConfig{Priority: 0, Threads: 1, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	block := func(t *rtos.Thread) { t.Compute(time.Second) }
	// Queue starts draining only when the kernel runs; all Dispatches
	// here land in the queue.
	accepted := 0
	for i := 0; i < 5; i++ {
		if tp.Dispatch(Work{Priority: 0, Fn: block}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2 (bounded queue)", accepted)
	}
	if tp.Refused(0) != 3 {
		t.Fatalf("refused = %d, want 3", tp.Refused(0))
	}
	k.RunUntil(10 * time.Second)
}

func TestThreadPoolValidation(t *testing.T) {
	k := sim.NewKernel(1)
	h := rtos.NewHost(k, "h", rtos.HostConfig{})
	mm := NewMappingManager()
	if _, err := NewThreadPool(h, mm); err == nil {
		t.Fatal("empty lane list accepted")
	}
	if _, err := NewThreadPool(h, mm, LaneConfig{Priority: 5, Threads: 0}); err == nil {
		t.Fatal("zero-thread lane accepted")
	}
	if _, err := NewThreadPool(h, mm,
		LaneConfig{Priority: 10, Threads: 1},
		LaneConfig{Priority: 10, Threads: 1}); err == nil {
		t.Fatal("non-ascending lanes accepted")
	}
}

func TestHighPriorityLaneNotBlockedByLow(t *testing.T) {
	// One slow low-priority request must not delay a high-priority
	// request served by a different lane.
	k := sim.NewKernel(1)
	h := rtos.NewHost(k, "h", rtos.HostConfig{})
	tp, err := NewThreadPool(h, NewMappingManager(),
		LaneConfig{Priority: 0, Threads: 1},
		LaneConfig{Priority: 20000, Threads: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	var highDone sim.Time
	tp.Dispatch(Work{Priority: 0, Fn: func(t *rtos.Thread) { t.Compute(500 * time.Millisecond) }})
	tp.Dispatch(Work{Priority: 25000, Fn: func(t *rtos.Thread) {
		t.Compute(time.Millisecond)
		highDone = t.Now()
	}})
	k.RunUntil(2 * time.Second)
	if highDone == 0 || highDone > 10*time.Millisecond {
		t.Fatalf("high-priority work finished at %v; blocked behind low lane", highDone)
	}
}
