// Package rtcorba implements the Real-time CORBA 1.0 resource-control
// features the paper layers over the ORB: the global CORBA priority
// scheme (0..32767) with pluggable mappings onto each host's native
// priority range, the priority-mapping manager that lets applications
// install custom mappings, priority model policies (client-propagated and
// server-declared), thread pools with priority lanes, and protocol
// properties extended — as the paper describes for TAO — with a mapping
// from CORBA priorities to DiffServ codepoints.
package rtcorba

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/rtos"
)

// Priority is a CORBA priority: a platform-independent urgency value in
// 0..32767 that RT-CORBA maps onto native OS priorities at every host an
// activity spans.
type Priority int16

// CORBA priority bounds.
const (
	MinPriority Priority = 0
	MaxPriority Priority = 32767
)

// Valid reports whether p lies in the CORBA priority range.
func (p Priority) Valid() bool { return p >= MinPriority && p <= MaxPriority }

// PriorityMapping converts between CORBA and native priorities for a
// host's native range. Implementations must be monotone: a higher CORBA
// priority never maps to a lower native priority.
type PriorityMapping interface {
	// ToNative maps a CORBA priority into the native range.
	ToNative(p Priority, r rtos.PriorityRange) (rtos.Priority, bool)
	// ToCORBA maps a native priority back to a CORBA priority.
	ToCORBA(n rtos.Priority, r rtos.PriorityRange) (Priority, bool)
}

// LinearMapping is the default mapping: CORBA 0..32767 scales linearly
// onto the native range.
type LinearMapping struct{}

var _ PriorityMapping = LinearMapping{}

// ToNative implements PriorityMapping.
func (LinearMapping) ToNative(p Priority, r rtos.PriorityRange) (rtos.Priority, bool) {
	if !p.Valid() {
		return 0, false
	}
	span := int64(r.Span() - 1)
	native := int64(r.Min) + (int64(p)*span+int64(MaxPriority)/2)/int64(MaxPriority)
	return rtos.Priority(native), true
}

// ToCORBA implements PriorityMapping.
func (LinearMapping) ToCORBA(n rtos.Priority, r rtos.PriorityRange) (Priority, bool) {
	if !r.Contains(n) {
		return 0, false
	}
	span := int64(r.Span() - 1)
	if span == 0 {
		return 0, true
	}
	c := (int64(n-r.Min)*int64(MaxPriority) + span/2) / span
	return Priority(c), true
}

// StepMapping maps CORBA priority ranges to fixed native priorities —
// the style of custom mapping installed when only a few native levels
// are meaningful (e.g. QNX's 32).
type StepMapping struct {
	// Steps must be sorted ascending by From; a priority p uses the last
	// step with From <= p.
	Steps []Step
}

// Step is one rung of a StepMapping.
type Step struct {
	From   Priority
	Native rtos.Priority
}

var _ PriorityMapping = StepMapping{}

// ToNative implements PriorityMapping.
func (m StepMapping) ToNative(p Priority, r rtos.PriorityRange) (rtos.Priority, bool) {
	if !p.Valid() || len(m.Steps) == 0 {
		return 0, false
	}
	out := m.Steps[0].Native
	found := false
	for _, s := range m.Steps {
		if p >= s.From {
			out = s.Native
			found = true
		}
	}
	if !found || !r.Contains(out) {
		return 0, false
	}
	return out, true
}

// ToCORBA implements PriorityMapping.
func (m StepMapping) ToCORBA(n rtos.Priority, r rtos.PriorityRange) (Priority, bool) {
	if !r.Contains(n) {
		return 0, false
	}
	// Return the highest step whose native priority does not exceed n.
	best := Priority(-1)
	for _, s := range m.Steps {
		if s.Native <= n && s.From > best {
			best = s.From
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// MappingManager is TAO's priority-mapping manager: it holds the mapping
// in force and supports installing a custom one at run time.
type MappingManager struct {
	mapping PriorityMapping
}

// NewMappingManager returns a manager using the default linear mapping.
func NewMappingManager() *MappingManager {
	return &MappingManager{mapping: LinearMapping{}}
}

// Install replaces the mapping. A nil mapping restores the default.
func (m *MappingManager) Install(pm PriorityMapping) {
	if pm == nil {
		pm = LinearMapping{}
	}
	m.mapping = pm
}

// Mapping returns the mapping in force.
func (m *MappingManager) Mapping() PriorityMapping { return m.mapping }

// ToNative maps via the installed mapping.
func (m *MappingManager) ToNative(p Priority, r rtos.PriorityRange) (rtos.Priority, bool) {
	return m.mapping.ToNative(p, r)
}

// ToCORBA maps via the installed mapping.
func (m *MappingManager) ToCORBA(n rtos.Priority, r rtos.PriorityRange) (Priority, bool) {
	return m.mapping.ToCORBA(n, r)
}

// PriorityModel selects how the priority of a servant dispatch is chosen,
// per the RT-CORBA PriorityModelPolicy.
type PriorityModel int

const (
	// ClientPropagated runs the dispatch at the CORBA priority carried
	// in the request's service context.
	ClientPropagated PriorityModel = iota + 1
	// ServerDeclared runs every dispatch at the priority declared by
	// the server when it created the object reference.
	ServerDeclared
)

func (m PriorityModel) String() string {
	switch m {
	case ClientPropagated:
		return "CLIENT_PROPAGATED"
	case ServerDeclared:
		return "SERVER_DECLARED"
	default:
		return fmt.Sprintf("PriorityModel(%d)", int(m))
	}
}

// NetworkPriorityMapping maps CORBA priorities to DiffServ codepoints —
// the paper's extension of TAO's protocol properties so that GIOP
// traffic priority propagates into the network.
type NetworkPriorityMapping interface {
	ToDSCP(p Priority) netsim.DSCP
}

// DSCPBand is one rung of a BandedDSCPMapping.
type DSCPBand struct {
	From Priority
	DSCP netsim.DSCP
}

// BandedDSCPMapping maps priority bands to codepoints: a priority uses
// the last band whose From it reaches.
type BandedDSCPMapping struct {
	Bands []DSCPBand
}

var _ NetworkPriorityMapping = BandedDSCPMapping{}

// ToDSCP implements NetworkPriorityMapping.
func (m BandedDSCPMapping) ToDSCP(p Priority) netsim.DSCP {
	out := netsim.DSCPBestEffort
	for _, b := range m.Bands {
		if p >= b.From {
			out = b.DSCP
		}
	}
	return out
}

// BestEffortMapping maps every priority to the default codepoint (no
// network QoS management).
type BestEffortMapping struct{}

var _ NetworkPriorityMapping = BestEffortMapping{}

// ToDSCP implements NetworkPriorityMapping.
func (BestEffortMapping) ToDSCP(Priority) netsim.DSCP { return netsim.DSCPBestEffort }
