package rtcorba

import (
	"fmt"

	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/trace/telemetry"
)

// ShedReason classifies why the pool discarded a work item instead of
// executing it.
type ShedReason int

const (
	// ShedEvicted means a full lane evicted this (lowest-priority) item
	// to admit a higher-priority arrival.
	ShedEvicted ShedReason = iota + 1
	// ShedDeadline means the item's end-to-end deadline had already
	// expired when a lane thread dequeued it: executing it would waste
	// CPU on a reply the client no longer wants.
	ShedDeadline
)

func (r ShedReason) String() string {
	switch r {
	case ShedEvicted:
		return "evicted"
	case ShedDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("ShedReason(%d)", int(r))
	}
}

// Work is a unit dispatched onto a pool thread. The thread's native
// priority has already been set according to the priority model when fn
// runs.
type Work struct {
	// Priority is the CORBA priority governing the dispatch.
	Priority Priority
	// Fn is executed on the pool thread.
	Fn func(t *rtos.Thread)
	// Ctx, when valid, parents the lane-queue span the pool records for
	// this work item (the enqueue-to-dequeue delay) when a tracer is
	// installed.
	Ctx trace.SpanContext
	// Deadline, when non-zero, is the absolute expiry instant of the
	// request's end-to-end deadline. A lane thread that dequeues the
	// item after this instant sheds it instead of running Fn.
	Deadline sim.Time
	// Shed, when non-nil, runs instead of Fn if the pool discards the
	// item (eviction by a higher-priority arrival, or deadline expiry at
	// dequeue). Servers use it to answer the client with an overload or
	// timeout reply so the caller can tell shedding from a crash.
	Shed func(reason ShedReason)

	qspan *trace.Span
}

// LaneConfig configures one priority lane of a thread pool.
type LaneConfig struct {
	// Priority is the lane's CORBA priority: the lane serves requests at
	// or above this priority (up to the next lane), and its threads
	// idle at the mapped native priority.
	Priority Priority
	// Threads is the number of static threads. Must be >= 1.
	Threads int
	// QueueLimit bounds buffered requests per lane (an RT-CORBA memory
	// resource control). 0 means unbounded.
	QueueLimit int
	// HighWatermark, when positive, enables admission control before the
	// hard limit: once the lane buffers this many requests, a new
	// arrival is admitted only if its priority strictly exceeds that of
	// some already-queued request (i.e. it would win an eviction). The
	// effect is that a sustained flood of equal-priority work stabilises
	// at the watermark with bounded queueing delay instead of filling
	// the queue to the limit. Must not exceed QueueLimit when both are
	// set.
	HighWatermark int
}

// ThreadPool is an RT-CORBA thread pool with priority lanes: requests are
// dispatched to the lane whose priority is the highest not exceeding the
// request's priority, so high-priority requests never queue behind
// low-priority ones. Bounded lanes shed load priority-aware: a
// high-priority arrival at a full lane evicts the lowest-priority queued
// item rather than being refused, and items whose end-to-end deadline
// has already expired are discarded at dequeue.
type ThreadPool struct {
	host     *rtos.Host
	mm       *MappingManager
	lanes    []*lane
	tracer   *trace.Tracer
	reg      *telemetry.Registry
	shedHook func(lane Priority, reason string)
}

// SetTracer enables lane-queue spans for work items carrying a trace
// context. A nil tracer disables them.
func (tp *ThreadPool) SetTracer(tr *trace.Tracer) { tp.tracer = tr }

// SetTelemetry publishes per-lane shed and refusal counters into reg
// (pool.shed{lane,reason} and pool.refused{lane}). A nil registry
// disables them.
func (tp *ThreadPool) SetTelemetry(reg *telemetry.Registry) { tp.reg = reg }

// SetShedHook installs fn to observe every discarded work item: reason
// is "evicted" or "deadline" for post-admission sheds and "refused" for
// admission rejections. The monitoring plane uses it to merge lane
// sheds into the unified event timeline.
func (tp *ThreadPool) SetShedHook(fn func(lane Priority, reason string)) { tp.shedHook = fn }

type lane struct {
	cfg          LaneConfig
	native       rtos.Priority
	queue        *sim.Queue[Work]
	threads      []*rtos.Thread
	served       int64
	refused      int64
	shedEvicted  int64
	shedDeadline int64
}

// lowerPriority orders work items for eviction: strictly by CORBA
// priority, with ties resolving to the earliest-queued item (FIFO).
func lowerPriority(a, b Work) bool { return a.Priority < b.Priority }

// NewThreadPool creates a pool on host with the given lanes, which must
// be sorted by ascending priority and non-empty. Threads start
// immediately and idle at their lane's mapped native priority.
func NewThreadPool(host *rtos.Host, mm *MappingManager, lanes ...LaneConfig) (*ThreadPool, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("rtcorba: thread pool needs at least one lane")
	}
	tp := &ThreadPool{host: host, mm: mm}
	prev := Priority(-1)
	for _, cfg := range lanes {
		if cfg.Priority <= prev {
			return nil, fmt.Errorf("rtcorba: lanes must have strictly ascending priorities")
		}
		prev = cfg.Priority
		if cfg.Threads < 1 {
			return nil, fmt.Errorf("rtcorba: lane at priority %d has no threads", cfg.Priority)
		}
		if cfg.HighWatermark < 0 || (cfg.QueueLimit > 0 && cfg.HighWatermark > cfg.QueueLimit) {
			return nil, fmt.Errorf("rtcorba: lane at priority %d has watermark %d outside [0,%d]",
				cfg.Priority, cfg.HighWatermark, cfg.QueueLimit)
		}
		native, ok := mm.ToNative(cfg.Priority, host.Priorities())
		if !ok {
			return nil, fmt.Errorf("rtcorba: lane priority %d does not map to a native priority", cfg.Priority)
		}
		ln := &lane{cfg: cfg, native: native}
		if cfg.QueueLimit > 0 {
			ln.queue = sim.NewBoundedQueue[Work](cfg.QueueLimit)
		} else {
			ln.queue = sim.NewQueue[Work]()
		}
		tp.lanes = append(tp.lanes, ln)
	}
	for _, ln := range tp.lanes {
		ln := ln
		for i := 0; i < ln.cfg.Threads; i++ {
			name := fmt.Sprintf("pool-l%d-t%d", ln.cfg.Priority, i)
			th := host.Spawn(name, ln.native, func(t *rtos.Thread) {
				tp.laneWorker(ln, t)
			})
			ln.threads = append(ln.threads, th)
		}
	}
	return tp, nil
}

// NewSingleLanePool is the common case: one lane at the given priority.
func NewSingleLanePool(host *rtos.Host, mm *MappingManager, prio Priority, threads int) (*ThreadPool, error) {
	return NewThreadPool(host, mm, LaneConfig{Priority: prio, Threads: threads})
}

func (tp *ThreadPool) laneWorker(ln *lane, t *rtos.Thread) {
	for {
		w := ln.queue.Get(t.Proc())
		// Check the remaining deadline budget before spending CPU: a
		// request that already expired in the queue is shed, not served.
		if w.Deadline > 0 && t.Now() > w.Deadline {
			tp.shed(ln, w, ShedDeadline)
			continue
		}
		if w.qspan != nil {
			// The queueing delay ends the moment a lane thread picks the
			// work up; execution is traced by the dispatch span above.
			w.qspan.Finish()
		}
		// Client-propagated dispatches run at the request's mapped
		// priority; the mapping manager is consulted per dispatch so a
		// newly installed custom mapping takes effect immediately.
		if native, ok := tp.mm.ToNative(w.Priority, tp.host.Priorities()); ok {
			t.SetPriority(native)
		} else {
			t.SetPriority(ln.native)
		}
		w.Fn(t)
		ln.served++
		t.SetPriority(ln.native)
	}
}

// shed records and reports the discard of a queued work item.
func (tp *ThreadPool) shed(ln *lane, w Work, reason ShedReason) {
	switch reason {
	case ShedEvicted:
		ln.shedEvicted++
	case ShedDeadline:
		ln.shedDeadline++
	}
	if w.qspan != nil {
		if reason == ShedDeadline {
			w.qspan.Event("deadline_expired")
		} else {
			w.qspan.Event("shed", trace.String("reason", reason.String()))
		}
		w.qspan.Finish()
	} else if tp.tracer != nil && w.Ctx.Valid() && reason == ShedDeadline {
		s := tp.tracer.StartChild(w.Ctx, "deadline_expired", trace.LayerOverload)
		s.Finish()
	}
	if tp.reg != nil {
		tp.reg.Counter("pool.shed",
			telemetry.L("lane", fmt.Sprint(ln.cfg.Priority)),
			telemetry.L("reason", reason.String())).Inc()
	}
	if tp.shedHook != nil {
		tp.shedHook(ln.cfg.Priority, reason.String())
	}
	if w.Shed != nil {
		w.Shed(reason)
	}
}

// Dispatch queues work onto the lane matching its priority. It reports
// false if the lane refused the work — the queue is at its hard limit
// with no lower-priority victim to evict, or at its high watermark and
// the work would not win an eviction (the RT-CORBA TRANSIENT condition).
// Work admitted by evicting a queued item triggers the victim's Shed
// callback.
func (tp *ThreadPool) Dispatch(w Work) bool {
	ln := tp.laneFor(w.Priority)
	if tp.tracer != nil && w.Ctx.Valid() {
		w.qspan = tp.tracer.StartChild(w.Ctx, "lane.queue", trace.LayerRTCORBA)
		w.qspan.SetAttr(
			trace.Int("lane", int64(ln.cfg.Priority)),
			trace.Int("depth", int64(ln.queue.Len())),
		)
	}
	// Admission control above the high watermark: only work that
	// dominates something already queued gets in, so a flood of
	// equal-priority requests stabilises at the watermark.
	if ln.cfg.HighWatermark > 0 && ln.queue.Len() >= ln.cfg.HighWatermark {
		if min, ok := ln.queue.Min(lowerPriority); !ok || w.Priority <= min.Priority {
			return tp.refuse(ln, w)
		}
	}
	if ln.queue.Put(w) {
		return true
	}
	// Hard limit reached: reject-lowest-first. Evict the lowest-priority
	// queued item if the arrival outranks it; otherwise refuse the
	// arrival itself.
	if min, ok := ln.queue.Min(lowerPriority); ok && min.Priority < w.Priority {
		if victim, ok := ln.queue.EvictMin(lowerPriority); ok {
			tp.shed(ln, victim, ShedEvicted)
			if ln.queue.Put(w) {
				return true
			}
		}
	}
	return tp.refuse(ln, w)
}

func (tp *ThreadPool) refuse(ln *lane, w Work) bool {
	ln.refused++
	if w.qspan != nil {
		w.qspan.Event("refused")
		w.qspan.Finish()
	}
	if tp.reg != nil {
		tp.reg.Counter("pool.refused", telemetry.L("lane", fmt.Sprint(ln.cfg.Priority))).Inc()
	}
	if tp.shedHook != nil {
		tp.shedHook(ln.cfg.Priority, "refused")
	}
	return false
}

// laneFor returns the highest lane whose priority does not exceed p, or
// the lowest lane if p is below every lane.
func (tp *ThreadPool) laneFor(p Priority) *lane {
	best := tp.lanes[0]
	for _, ln := range tp.lanes {
		if ln.cfg.Priority <= p {
			best = ln
		}
	}
	return best
}

// Lanes returns the number of lanes.
func (tp *ThreadPool) Lanes() int { return len(tp.lanes) }

// Served returns the number of completed dispatches in lane i.
func (tp *ThreadPool) Served(i int) int64 { return tp.lanes[i].served }

// Refused returns the number of dispatches refused by lane i (hard
// queue limit with no evictable victim, or watermark admission control).
func (tp *ThreadPool) Refused(i int) int64 { return tp.lanes[i].refused }

// ShedEvicted returns the number of queued items lane i evicted to admit
// higher-priority arrivals.
func (tp *ThreadPool) ShedEvicted(i int) int64 { return tp.lanes[i].shedEvicted }

// ShedDeadline returns the number of items lane i discarded at dequeue
// because their end-to-end deadline had expired.
func (tp *ThreadPool) ShedDeadline(i int) int64 { return tp.lanes[i].shedDeadline }

// Shed returns the total number of work items lane i discarded after
// admission (evictions plus deadline sheds).
func (tp *ThreadPool) Shed(i int) int64 {
	return tp.lanes[i].shedEvicted + tp.lanes[i].shedDeadline
}

// QueueDepth returns the number of requests buffered in lane i.
func (tp *ThreadPool) QueueDepth(i int) int { return tp.lanes[i].queue.Len() }
