package rtcorba

import (
	"fmt"

	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Work is a unit dispatched onto a pool thread. The thread's native
// priority has already been set according to the priority model when fn
// runs.
type Work struct {
	// Priority is the CORBA priority governing the dispatch.
	Priority Priority
	// Fn is executed on the pool thread.
	Fn func(t *rtos.Thread)
	// Ctx, when valid, parents the lane-queue span the pool records for
	// this work item (the enqueue-to-dequeue delay) when a tracer is
	// installed.
	Ctx trace.SpanContext

	qspan *trace.Span
}

// LaneConfig configures one priority lane of a thread pool.
type LaneConfig struct {
	// Priority is the lane's CORBA priority: the lane serves requests at
	// or above this priority (up to the next lane), and its threads
	// idle at the mapped native priority.
	Priority Priority
	// Threads is the number of static threads. Must be >= 1.
	Threads int
	// QueueLimit bounds buffered requests per lane (an RT-CORBA memory
	// resource control). 0 means unbounded.
	QueueLimit int
}

// ThreadPool is an RT-CORBA thread pool with priority lanes: requests are
// dispatched to the lane whose priority is the highest not exceeding the
// request's priority, so high-priority requests never queue behind
// low-priority ones.
type ThreadPool struct {
	host   *rtos.Host
	mm     *MappingManager
	lanes  []*lane
	tracer *trace.Tracer
}

// SetTracer enables lane-queue spans for work items carrying a trace
// context. A nil tracer disables them.
func (tp *ThreadPool) SetTracer(tr *trace.Tracer) { tp.tracer = tr }

type lane struct {
	cfg     LaneConfig
	native  rtos.Priority
	queue   *sim.Queue[Work]
	threads []*rtos.Thread
	served  int64
	refused int64
}

// NewThreadPool creates a pool on host with the given lanes, which must
// be sorted by ascending priority and non-empty. Threads start
// immediately and idle at their lane's mapped native priority.
func NewThreadPool(host *rtos.Host, mm *MappingManager, lanes ...LaneConfig) (*ThreadPool, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("rtcorba: thread pool needs at least one lane")
	}
	tp := &ThreadPool{host: host, mm: mm}
	prev := Priority(-1)
	for _, cfg := range lanes {
		if cfg.Priority <= prev {
			return nil, fmt.Errorf("rtcorba: lanes must have strictly ascending priorities")
		}
		prev = cfg.Priority
		if cfg.Threads < 1 {
			return nil, fmt.Errorf("rtcorba: lane at priority %d has no threads", cfg.Priority)
		}
		native, ok := mm.ToNative(cfg.Priority, host.Priorities())
		if !ok {
			return nil, fmt.Errorf("rtcorba: lane priority %d does not map to a native priority", cfg.Priority)
		}
		ln := &lane{cfg: cfg, native: native}
		if cfg.QueueLimit > 0 {
			ln.queue = sim.NewBoundedQueue[Work](cfg.QueueLimit)
		} else {
			ln.queue = sim.NewQueue[Work]()
		}
		tp.lanes = append(tp.lanes, ln)
	}
	for _, ln := range tp.lanes {
		ln := ln
		for i := 0; i < ln.cfg.Threads; i++ {
			name := fmt.Sprintf("pool-l%d-t%d", ln.cfg.Priority, i)
			th := host.Spawn(name, ln.native, func(t *rtos.Thread) {
				tp.laneWorker(ln, t)
			})
			ln.threads = append(ln.threads, th)
		}
	}
	return tp, nil
}

// NewSingleLanePool is the common case: one lane at the given priority.
func NewSingleLanePool(host *rtos.Host, mm *MappingManager, prio Priority, threads int) (*ThreadPool, error) {
	return NewThreadPool(host, mm, LaneConfig{Priority: prio, Threads: threads})
}

func (tp *ThreadPool) laneWorker(ln *lane, t *rtos.Thread) {
	for {
		w := ln.queue.Get(t.Proc())
		if w.qspan != nil {
			// The queueing delay ends the moment a lane thread picks the
			// work up; execution is traced by the dispatch span above.
			w.qspan.Finish()
		}
		// Client-propagated dispatches run at the request's mapped
		// priority; the mapping manager is consulted per dispatch so a
		// newly installed custom mapping takes effect immediately.
		if native, ok := tp.mm.ToNative(w.Priority, tp.host.Priorities()); ok {
			t.SetPriority(native)
		} else {
			t.SetPriority(ln.native)
		}
		w.Fn(t)
		ln.served++
		t.SetPriority(ln.native)
	}
}

// Dispatch queues work onto the lane matching its priority. It reports
// false if the lane's queue is full (the RT-CORBA TRANSIENT condition).
func (tp *ThreadPool) Dispatch(w Work) bool {
	ln := tp.laneFor(w.Priority)
	if tp.tracer != nil && w.Ctx.Valid() {
		w.qspan = tp.tracer.StartChild(w.Ctx, "lane.queue", trace.LayerRTCORBA)
		w.qspan.SetAttr(
			trace.Int("lane", int64(ln.cfg.Priority)),
			trace.Int("depth", int64(ln.queue.Len())),
		)
	}
	if !ln.queue.Put(w) {
		ln.refused++
		if w.qspan != nil {
			w.qspan.Event("refused")
			w.qspan.Finish()
		}
		return false
	}
	return true
}

// laneFor returns the highest lane whose priority does not exceed p, or
// the lowest lane if p is below every lane.
func (tp *ThreadPool) laneFor(p Priority) *lane {
	best := tp.lanes[0]
	for _, ln := range tp.lanes {
		if ln.cfg.Priority <= p {
			best = ln
		}
	}
	return best
}

// Lanes returns the number of lanes.
func (tp *ThreadPool) Lanes() int { return len(tp.lanes) }

// Served returns the number of completed dispatches in lane i.
func (tp *ThreadPool) Served(i int) int64 { return tp.lanes[i].served }

// Refused returns the number of dispatches refused by lane i's bounded
// queue.
func (tp *ThreadPool) Refused(i int) int64 { return tp.lanes[i].refused }

// QueueDepth returns the number of requests buffered in lane i.
func (tp *ThreadPool) QueueDepth(i int) int { return tp.lanes[i].queue.Len() }
