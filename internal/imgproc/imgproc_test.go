package imgproc

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestPPMRoundTrip(t *testing.T) {
	im := Synthetic(40, 25, 7)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 40 || got.H != 25 {
		t.Fatalf("dimensions %dx%d", got.W, got.H)
	}
	if !bytes.Equal(got.Pix, im.Pix) {
		t.Fatal("pixel data corrupted in round trip")
	}
}

func TestPPMWithComments(t *testing.T) {
	data := "P6\n# a comment\n2 1\n# another\n255\n" + string([]byte{1, 2, 3, 4, 5, 6})
	im, err := ReadPPM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 1 {
		t.Fatalf("dimensions %dx%d", im.W, im.H)
	}
	r, g, b := im.At(1, 0)
	if r != 4 || g != 5 || b != 6 {
		t.Fatalf("pixel (1,0) = %d,%d,%d", r, g, b)
	}
}

func TestPPMRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"bad magic":  "P5\n2 2\n255\n",
		"empty":      "",
		"truncated":  "P6\n10 10\n255\n\x00\x01",
		"bad maxval": "P6\n2 2\n65535\n",
		"bad dims":   "P6\n-3 2\n255\n",
	}
	for name, s := range cases {
		if _, err := ReadPPM(strings.NewReader(s)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestPaperImageSize(t *testing.T) {
	// The paper's images: 400x250 PPM in RGB, 300,060 bytes with header.
	im := Synthetic(400, 250, 1)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 300_015 {
		// 300,000 pixels bytes + "P6\n400 250\n255\n" (15 bytes).
		t.Fatalf("PPM size = %d", buf.Len())
	}
	if im.Bytes() != 300_000 {
		t.Fatalf("payload = %d", im.Bytes())
	}
}

func TestGrayWeights(t *testing.T) {
	im := NewImage(3, 1)
	im.Set(0, 0, 255, 0, 0)
	im.Set(1, 0, 0, 255, 0)
	im.Set(2, 0, 0, 0, 255)
	g := im.Gray()
	if !(g[1] > g[0] && g[0] > g[2]) {
		t.Fatalf("luminance weights wrong: R=%d G=%d B=%d", g[0], g[1], g[2])
	}
}

// edgeImage builds a sharp vertical edge.
func edgeImage(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x >= w/2 {
				im.Set(x, y, 255, 255, 255)
			}
		}
	}
	return im
}

func TestDetectorsFindEdge(t *testing.T) {
	im := edgeImage(32, 16)
	for _, algo := range Algorithms() {
		out := algo.Detect(im)
		edgeCol := im.W / 2
		// Strong response at the edge.
		onEdge := int(out[8*im.W+edgeCol-1]) + int(out[8*im.W+edgeCol])
		if onEdge < 200 {
			t.Errorf("%v: weak edge response %d", algo, onEdge)
		}
		// Quiet in the flat regions.
		if out[8*im.W+4] > 10 || out[8*im.W+im.W-5] > 10 {
			t.Errorf("%v: response in flat region: %d / %d",
				algo, out[8*im.W+4], out[8*im.W+im.W-5])
		}
	}
}

func TestDetectorsZeroOnFlatImage(t *testing.T) {
	im := NewImage(16, 16)
	for i := range im.Pix {
		im.Pix[i] = 128
	}
	for _, algo := range Algorithms() {
		out := algo.Detect(im)
		for i, v := range out {
			if v != 0 {
				t.Fatalf("%v: nonzero response %d at %d on flat image", algo, v, i)
			}
		}
	}
}

func TestDetectorBordersZero(t *testing.T) {
	im := Synthetic(20, 12, 3)
	for _, algo := range Algorithms() {
		out := algo.Detect(im)
		for x := 0; x < im.W; x++ {
			if out[x] != 0 || out[(im.H-1)*im.W+x] != 0 {
				t.Fatalf("%v: border response at column %d", algo, x)
			}
		}
	}
}

func TestCyclesOrdering(t *testing.T) {
	// Kirsch (8 masks) must cost the most; Sobel slightly above Prewitt.
	k := AlgoKirsch.Cycles(400, 250)
	p := AlgoPrewitt.Cycles(400, 250)
	s := AlgoSobel.Cycles(400, 250)
	if !(k > s && s > p) {
		t.Fatalf("cycle ordering: Kirsch=%.0f Sobel=%.0f Prewitt=%.0f", k, s, p)
	}
	// On the paper's 850 MHz machine each image should take tens to a
	// couple hundred ms.
	for _, c := range []float64{k, p, s} {
		ms := c / 850e6 * 1e3
		if ms < 10 || ms > 500 {
			t.Fatalf("per-image time %.1f ms out of plausible range", ms)
		}
	}
}

func TestCyclesScaleWithPixels(t *testing.T) {
	prop := func(w1, h1, w2, h2 uint8) bool {
		a := AlgoKirsch.Cycles(int(w1)+1, int(h1)+1)
		b := AlgoKirsch.Cycles(int(w2)+1, int(h2)+1)
		p1 := (int(w1) + 1) * (int(h1) + 1)
		p2 := (int(w2) + 1) * (int(h2) + 1)
		if p1 == p2 {
			return a == b
		}
		if p1 < p2 {
			return a < b
		}
		return a > b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(64, 48, 42)
	b := Synthetic(64, 48, 42)
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("synthetic image generation not deterministic")
	}
	c := Synthetic(64, 48, 43)
	if bytes.Equal(a.Pix, c.Pix) {
		t.Fatal("different seeds produced identical images")
	}
}
