// Package imgproc provides the image-processing substrate for the
// paper's ATR (automatic target recognition) experiments: PPM (P6) image
// reading and writing, grayscale conversion, and the three
// computationally intensive edge-detection algorithms the paper runs —
// Prewitt, Sobel, and Kirsch — implemented as real convolutions.
//
// The detectors genuinely compute edge maps (and are unit-tested on
// synthetic images); a calibrated cycle-cost model converts each
// algorithm's per-pixel work into simulated CPU time so the scheduling
// experiments (Table 2) see realistic, proportionate compute demands.
package imgproc

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// Image is an 8-bit RGB image.
type Image struct {
	W, H int
	// Pix holds RGB triples, row-major: Pix[3*(y*W+x)+c].
	Pix []uint8
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// At returns the RGB components at (x, y).
func (im *Image) At(x, y int) (r, g, b uint8) {
	i := 3 * (y*im.W + x)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set writes the RGB components at (x, y).
func (im *Image) Set(x, y int, r, g, b uint8) {
	i := 3 * (y*im.W + x)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Bytes returns the image's in-memory size, which is also its PPM payload
// size (the paper's 400x250 RGB images are 300,060 bytes with header).
func (im *Image) Bytes() int { return len(im.Pix) }

// Gray converts to a luminance plane using integer Rec.601 weights.
func (im *Image) Gray() []uint8 {
	out := make([]uint8, im.W*im.H)
	for i := 0; i < im.W*im.H; i++ {
		r := int(im.Pix[3*i])
		g := int(im.Pix[3*i+1])
		b := int(im.Pix[3*i+2])
		out[i] = uint8((299*r + 587*g + 114*b) / 1000)
	}
	return out
}

// WritePPM encodes the image as binary PPM (P6).
func (im *Image) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPPM decodes a binary PPM (P6) image.
func ReadPPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("imgproc: reading magic: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("imgproc: unsupported magic %q", magic)
	}
	readToken := func() (int, error) {
		// Skip whitespace and comments.
		for {
			c, err := br.ReadByte()
			if err != nil {
				return 0, err
			}
			switch {
			case c == '#':
				if _, err := br.ReadString('\n'); err != nil {
					return 0, err
				}
			case c == ' ' || c == '\t' || c == '\n' || c == '\r':
				continue
			default:
				if err := br.UnreadByte(); err != nil {
					return 0, err
				}
				var v int
				if _, err := fmt.Fscan(br, &v); err != nil {
					return 0, err
				}
				return v, nil
			}
		}
	}
	w, err := readToken()
	if err != nil {
		return nil, fmt.Errorf("imgproc: reading width: %w", err)
	}
	h, err := readToken()
	if err != nil {
		return nil, fmt.Errorf("imgproc: reading height: %w", err)
	}
	maxval, err := readToken()
	if err != nil {
		return nil, fmt.Errorf("imgproc: reading maxval: %w", err)
	}
	if maxval != 255 {
		return nil, fmt.Errorf("imgproc: unsupported maxval %d", maxval)
	}
	if w <= 0 || h <= 0 || w*h > 64<<20 {
		return nil, fmt.Errorf("imgproc: unreasonable dimensions %dx%d", w, h)
	}
	// Exactly one whitespace byte separates the header from the pixels.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("imgproc: header separator: %w", err)
	}
	im := NewImage(w, h)
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("imgproc: reading pixels: %w", err)
	}
	return im, nil
}

// Synthetic generates a deterministic test image with gradients and
// rectangles — content with real edges for the detectors to find. The
// paper's experiments use 400x250 images.
func Synthetic(w, h int, seed int64) *Image {
	im := NewImage(w, h)
	s := uint64(seed)*2654435761 + 1
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	// Background gradient.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, uint8(255*x/w), uint8(255*y/h), uint8((x+y)%256))
		}
	}
	// A handful of solid rectangles ("targets").
	for i := 0; i < 6; i++ {
		x0 := int(next() % uint64(w))
		y0 := int(next() % uint64(h))
		rw := 10 + int(next()%uint64(w/4))
		rh := 10 + int(next()%uint64(h/4))
		r, g, b := uint8(next()), uint8(next()), uint8(next())
		for y := y0; y < y0+rh && y < h; y++ {
			for x := x0; x < x0+rw && x < w; x++ {
				im.Set(x, y, r, g, b)
			}
		}
	}
	return im
}

// kernel3 is a 3x3 convolution mask.
type kernel3 [9]int

func (k kernel3) at(g []uint8, w, x, y int) int {
	sum := 0
	i := 0
	for dy := -1; dy <= 1; dy++ {
		row := (y + dy) * w
		for dx := -1; dx <= 1; dx++ {
			sum += k[i] * int(g[row+x+dx])
			i++
		}
	}
	return sum
}

func clamp255(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// gradient2 runs a two-mask gradient operator and returns the magnitude
// plane (border pixels are zero).
func gradient2(g []uint8, w, h int, kx, ky kernel3) []uint8 {
	out := make([]uint8, w*h)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			gx := kx.at(g, w, x, y)
			gy := ky.at(g, w, x, y)
			out[y*w+x] = clamp255(int(math.Sqrt(float64(gx*gx + gy*gy))))
		}
	}
	return out
}

// Sobel computes the Sobel edge magnitude of the image's luminance.
func Sobel(im *Image) []uint8 {
	kx := kernel3{-1, 0, 1, -2, 0, 2, -1, 0, 1}
	ky := kernel3{-1, -2, -1, 0, 0, 0, 1, 2, 1}
	return gradient2(im.Gray(), im.W, im.H, kx, ky)
}

// Prewitt computes the Prewitt edge magnitude of the image's luminance.
func Prewitt(im *Image) []uint8 {
	kx := kernel3{-1, 0, 1, -1, 0, 1, -1, 0, 1}
	ky := kernel3{-1, -1, -1, 0, 0, 0, 1, 1, 1}
	return gradient2(im.Gray(), im.W, im.H, kx, ky)
}

// kirschMasks are the eight compass masks of the Kirsch operator.
var kirschMasks = [8]kernel3{
	{5, 5, 5, -3, 0, -3, -3, -3, -3},
	{5, 5, -3, 5, 0, -3, -3, -3, -3},
	{5, -3, -3, 5, 0, -3, 5, -3, -3},
	{-3, -3, -3, 5, 0, -3, 5, 5, -3},
	{-3, -3, -3, -3, 0, -3, 5, 5, 5},
	{-3, -3, -3, -3, 0, 5, -3, 5, 5},
	{-3, -3, 5, -3, 0, 5, -3, -3, 5},
	{-3, 5, 5, -3, 0, 5, -3, -3, -3},
}

// Kirsch computes the Kirsch edge magnitude: the maximum response over
// eight compass masks, making it roughly four times the work of the
// two-mask operators.
func Kirsch(im *Image) []uint8 {
	g := im.Gray()
	w, h := im.W, im.H
	out := make([]uint8, w*h)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			best := 0
			for _, k := range kirschMasks {
				if v := k.at(g, w, x, y); v > best {
					best = v
				}
			}
			out[y*w+x] = clamp255(best / 8)
		}
	}
	return out
}

// Algorithm identifies an edge detector for the cost model and harness.
type Algorithm int

// The paper's three detectors.
const (
	AlgoKirsch Algorithm = iota + 1
	AlgoPrewitt
	AlgoSobel
)

func (a Algorithm) String() string {
	switch a {
	case AlgoKirsch:
		return "Kirsch"
	case AlgoPrewitt:
		return "Prewitt"
	case AlgoSobel:
		return "Sobel"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists the detectors in the paper's Table 2 order.
func Algorithms() []Algorithm { return []Algorithm{AlgoKirsch, AlgoPrewitt, AlgoSobel} }

// Detect runs the detector on im.
func (a Algorithm) Detect(im *Image) []uint8 {
	switch a {
	case AlgoKirsch:
		return Kirsch(im)
	case AlgoPrewitt:
		return Prewitt(im)
	case AlgoSobel:
		return Sobel(im)
	default:
		panic("imgproc: unknown algorithm")
	}
}

// Cycle-cost calibration. Each mask application touches 9 pixels with a
// multiply-accumulate plus loop and memory overhead; the constants are
// chosen so the per-image processing times on the paper's 850 MHz
// Pentium III land in the same range as its Table 2 (tens to a couple
// hundred milliseconds per 400x250 image, Kirsch costliest).
const (
	cyclesPerMaskPixel = 180
	// sqrtCycles models the magnitude computation of the two-mask
	// gradient operators.
	sqrtCycles = 60
	// grayCyclesPerPixel models the RGB -> luminance pass.
	grayCyclesPerPixel = 12
)

// Cycles estimates the CPU cycles algorithm a spends on a wxh image; the
// simulation divides by the host clock rate to obtain compute time.
func (a Algorithm) Cycles(w, h int) float64 {
	pixels := float64(w * h)
	gray := grayCyclesPerPixel * pixels
	switch a {
	case AlgoKirsch:
		return gray + 8*cyclesPerMaskPixel*pixels
	case AlgoPrewitt:
		return gray + (2*cyclesPerMaskPixel+sqrtCycles)*pixels
	case AlgoSobel:
		// Sobel's weighted masks cost slightly more than Prewitt's.
		return gray + (2*cyclesPerMaskPixel+sqrtCycles)*pixels*1.15
	default:
		panic("imgproc: unknown algorithm")
	}
}
