package core

import (
	"time"

	"repro/internal/cdr"
	"repro/internal/orb"
	"repro/internal/quo"
	"repro/internal/rtcorba"
	"repro/internal/rtos"
)

// RemoteCond is a QuO system condition fed by periodically polling a
// remote CORBA object: the "system condition objects ... provide
// consistent interfaces to infrastructure mechanisms, services and
// managers" of the paper, measured through the middleware itself (so the
// measurement traffic is subject to the same QoS machinery it observes).
type RemoteCond struct {
	*quo.MeasuredCond
	stop bool

	// Errors counts failed polls (the condition keeps its last value).
	Errors int64
	// Polls counts completed poll attempts.
	Polls int64
}

// Stop halts polling after the current round trip.
func (rc *RemoteCond) Stop() { rc.stop = true }

// NewRemoteCond starts a poller on machine m that invokes op on ref
// every period through o and feeds the returned CDR double into the
// condition. The poll runs at the given CORBA priority so measurement
// traffic competes (or doesn't) exactly as configured.
func (s *System) NewRemoteCond(name string, o *orb.ORB, m *Machine, ref *orb.ObjectRef, op string, period time.Duration, prio rtcorba.Priority) *RemoteCond {
	rc := &RemoteCond{MeasuredCond: quo.NewMeasuredCond(name, 0)}
	m.Host.Spawn("cond-"+name, 1, func(t *rtos.Thread) {
		if err := o.Current(t).SetPriority(prio); err != nil {
			panic(err)
		}
		for !rc.stop {
			body, err := o.InvokeOpt(t, ref, op, nil, orb.InvokeOptions{
				Timeout:  period,
				Priority: -1,
			})
			rc.Polls++
			if err != nil {
				rc.Errors++
			} else {
				d := cdr.NewDecoder(body, cdr.LittleEndian)
				if v, err := d.Double(); err == nil {
					rc.Set(v)
				} else {
					rc.Errors++
				}
			}
			t.Sleep(period)
		}
	})
	return rc
}

// DoubleServant adapts a float-returning function to a CORBA servant —
// the provider half of a remote system condition (e.g. exposing a
// host's CPU utilisation or a link's backlog).
func DoubleServant(fn func() float64) orb.Servant {
	return orb.ServantFunc(func(req *orb.ServerRequest) ([]byte, error) {
		e := cdr.NewEncoder(cdr.LittleEndian)
		e.PutDouble(fn())
		return e.Bytes(), nil
	})
}
