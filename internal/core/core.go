// Package core is the paper's primary contribution: flexible and
// adaptive end-to-end QoS control that integrates priority- and
// reservation-based OS and network resource-management mechanisms with
// the DOC middleware layers underneath (the TAO-style ORB with RT-CORBA,
// and the QuO adaptive layer).
//
// It provides three things:
//
//   - System: a scenario builder that assembles simulated machines
//     (rtos hosts bound to network nodes), routers, and QoS-capable
//     links, and wires ORBs, A/V streaming services, and resource
//     managers onto them.
//
//   - QoSManager: the end-to-end coordination layer. Priority paths set
//     a single CORBA priority that maps to native thread priorities on
//     every host and to DiffServ codepoints in the network (Figure 2);
//     reservation paths combine TimeSys-style CPU reserves with RSVP
//     bandwidth reservations. The manager also implements the paper's
//     proposed extension of using the priority paradigm to drive who
//     gets reservations.
//
//   - Video adaptation qoskets: packaged QuO contracts that watch
//     delivery quality and adjust MPEG frame filtering (30 -> 10 ->
//     2 fps) to what the network will support, as in the Figure 7 and
//     Table 1 experiments.
package core

import (
	"fmt"
	"time"

	"repro/internal/avstreams"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/resmgr"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// LinkProfile selects the queueing capabilities of a link.
type LinkProfile int

const (
	// ProfileBestEffort is a plain FIFO egress: no QoS management at
	// all (the paper's control runs).
	ProfileBestEffort LinkProfile = iota + 1
	// ProfileDiffServ adds an expedited band above a fair-queued best-
	// effort class (priority-based network management).
	ProfileDiffServ
	// ProfileFullQoS layers IntServ reservations over DiffServ over
	// fair queueing (both network paradigms available).
	ProfileFullQoS
)

func (p LinkProfile) String() string {
	switch p {
	case ProfileBestEffort:
		return "best-effort"
	case ProfileDiffServ:
		return "diffserv"
	case ProfileFullQoS:
		return "full-qos"
	default:
		return fmt.Sprintf("LinkProfile(%d)", int(p))
	}
}

// LinkSpec describes one duplex connection between nodes.
type LinkSpec struct {
	// Bps is the bandwidth per direction in bits per second.
	Bps float64
	// Delay is the propagation delay.
	Delay time.Duration
	// Profile selects queueing capabilities. Defaults to ProfileFullQoS.
	Profile LinkProfile
	// QueueBytes bounds each egress queue. Defaults to 64 KiB.
	QueueBytes int
}

func (ls LinkSpec) qdisc() netsim.Qdisc {
	limit := ls.QueueBytes
	if limit == 0 {
		limit = 64 * 1024
	}
	switch ls.Profile {
	case ProfileBestEffort:
		return netsim.NewFIFO(limit)
	case ProfileDiffServ:
		return netsim.NewDiffServ(limit/2, netsim.NewDRR(netsim.MTU, limit))
	default:
		return netsim.NewIntServ(netsim.NewDiffServ(limit/2, netsim.NewDRR(netsim.MTU, limit)))
	}
}

// Machine is one endsystem: a simulated host bound to a network node,
// with lazily created middleware services.
type Machine struct {
	sys  *System
	Host *rtos.Host
	Node *netsim.Node

	orb    *orb.ORB
	av     *avstreams.Service
	cpuMgr *resmgr.CPUManager
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.Host.Name() }

// ORB returns the machine's ORB, creating it with cfg on first use.
// Subsequent calls ignore cfg.
func (m *Machine) ORB(cfg orb.Config) *orb.ORB {
	if m.orb == nil {
		m.orb = orb.New(m.Name(), m.Host, m.sys.Net, m.Node, cfg)
	}
	return m.orb
}

// AV returns the machine's A/V streaming service, creating it on first
// use.
func (m *Machine) AV() *avstreams.Service {
	if m.av == nil {
		m.av = avstreams.NewService(m.Host, m.sys.Net, m.Node)
	}
	return m.av
}

// CPUManager returns the machine's CPU reservation agent, creating it on
// first use.
func (m *Machine) CPUManager() *resmgr.CPUManager {
	if m.cpuMgr == nil {
		m.cpuMgr = resmgr.NewCPUManager(m.Host)
	}
	return m.cpuMgr
}

// System is a complete simulated DRE system under one kernel.
type System struct {
	K   *sim.Kernel
	Net *netsim.Network

	machines map[string]*Machine
	routers  map[string]*netsim.Node
}

// NewSystem creates an empty system with a deterministic seed.
func NewSystem(seed int64) *System {
	k := sim.NewKernel(seed)
	return &System{
		K:        k,
		Net:      netsim.New(k),
		machines: make(map[string]*Machine),
		routers:  make(map[string]*netsim.Node),
	}
}

// AddMachine creates an endsystem. Names must be unique across machines
// and routers.
func (s *System) AddMachine(name string, cfg rtos.HostConfig) *Machine {
	s.checkName(name)
	m := &Machine{
		sys:  s,
		Host: rtos.NewHost(s.K, name, cfg),
		Node: s.Net.AddHost(name),
	}
	s.machines[name] = m
	return m
}

// AddRouter creates a forwarding node.
func (s *System) AddRouter(name string) *netsim.Node {
	s.checkName(name)
	r := s.Net.AddRouter(name)
	s.routers[name] = r
	return r
}

func (s *System) checkName(name string) {
	if _, dup := s.machines[name]; dup {
		panic(fmt.Sprintf("core: duplicate machine %q", name))
	}
	if _, dup := s.routers[name]; dup {
		panic(fmt.Sprintf("core: duplicate router %q", name))
	}
}

// Machine returns a machine by name, or nil.
func (s *System) Machine(name string) *Machine { return s.machines[name] }

// Router returns a router by name, or nil.
func (s *System) Router(name string) *netsim.Node { return s.routers[name] }

// nodeOf resolves a machine or router name to its network node.
func (s *System) nodeOf(name string) *netsim.Node {
	if m, ok := s.machines[name]; ok {
		return m.Node
	}
	if r, ok := s.routers[name]; ok {
		return r
	}
	panic(fmt.Sprintf("core: unknown node %q", name))
}

// Link connects two named nodes with a symmetric duplex link.
func (s *System) Link(a, b string, spec LinkSpec) {
	if spec.Bps <= 0 {
		panic("core: link needs positive bandwidth")
	}
	s.Net.Connect(s.nodeOf(a), s.nodeOf(b),
		netsim.LinkConfig{Bps: spec.Bps, Delay: spec.Delay, Queue: spec.qdisc()},
		netsim.LinkConfig{Bps: spec.Bps, Delay: spec.Delay, Queue: spec.qdisc()},
	)
}

// Run advances the system to absolute virtual time t.
func (s *System) RunUntil(t sim.Time) { s.K.RunUntil(t) }

// RunFor advances the system by d of virtual time.
func (s *System) RunFor(d time.Duration) { s.K.RunFor(d) }
