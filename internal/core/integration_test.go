package core

import (
	"testing"
	"time"

	"repro/internal/avstreams"
	"repro/internal/netsim"
	"repro/internal/rtos"
	"repro/internal/video"
)

// TestFigure3ArchitectureEndToEnd runs the paper's full evaluation
// application (Figure 3): UAV video sources feed a distributor that fans
// out to a control-station display and an ATR processor across a
// contended network. The display branch is reserved and EF-marked; the
// ATR branch rides best effort with QuO frame filtering. Under a mid-run
// load pulse the reserved branch must stay whole while the adaptive
// branch degrades to I-frames and recovers.
func TestFigure3ArchitectureEndToEnd(t *testing.T) {
	sys := NewSystem(42)
	uav1 := sys.AddMachine("uav1", rtos.HostConfig{Hz: 750e6})
	uav2 := sys.AddMachine("uav2", rtos.HostConfig{Hz: 750e6})
	dist := sys.AddMachine("distributor", rtos.HostConfig{Hz: 1e9})
	display := sys.AddMachine("display", rtos.HostConfig{Hz: 1e9})
	atr := sys.AddMachine("atr", rtos.HostConfig{Hz: 850e6})
	sys.AddRouter("router")

	up := LinkSpec{Bps: 20e6, Delay: 2 * time.Millisecond}
	down := LinkSpec{Bps: 10e6, Delay: time.Millisecond, Profile: ProfileFullQoS}
	sys.Link("uav1", "distributor", up)
	sys.Link("uav2", "distributor", up)
	sys.Link("distributor", "router", down)
	sys.Link("router", "display", down)
	sys.Link("router", "atr", down)

	displayRecv := display.AV().CreateReceiver(5000, 60, nil)
	atrRecv := atr.AV().CreateReceiver(5000, 60, nil)

	d := dist.AV().NewDistributor(4000, 70)
	var adaptive *VideoAdaptation
	dist.Host.Spawn("branches", 70, func(th *rtos.Thread) {
		// Display branch: reserved end to end (distributor -> router ->
		// display), marked EF.
		if _, err := d.AddBranch(th.Proc(), 4001, displayRecv.Addr(), avstreams.QoS{
			ReserveBps: 1.5e6,
			DSCP:       netsim.DSCPEF,
		}); err != nil {
			t.Errorf("display branch: %v", err)
			return
		}
		// ATR branch: best effort with QuO adaptation.
		atrBranch, err := d.AddBranch(th.Proc(), 4002, atrRecv.Addr(), avstreams.QoS{})
		if err != nil {
			t.Errorf("atr branch: %v", err)
			return
		}
		adaptive = sys.NewVideoAdaptation(atrBranch, atrRecv, VideoAdaptationConfig{
			Window: 500 * time.Millisecond,
		})
	})

	// Two UAV sources: only uav1's flow is relayed by this distributor;
	// uav2 streams directly to the display host as background best-
	// effort application traffic (a second pipeline in Figure 3).
	startSource := func(m *Machine, port uint16, dst netsim.Addr) {
		sender := m.AV().CreateSender(port)
		m.Host.Spawn("camera", 40, func(th *rtos.Thread) {
			st, err := sender.Bind(th.Proc(), dst, avstreams.QoS{})
			if err != nil {
				t.Errorf("bind: %v", err)
				return
			}
			th.Sleep(200 * time.Millisecond)
			st.RunSource(th, video.NewGenerator(video.StreamConfig{}), 90*time.Second)
		})
	}
	startSource(uav1, 4100, d.InAddr())
	aux := display.AV().CreateReceiver(5002, 10, nil)
	startSource(uav2, 4100, aux.Addr())

	// Load pulse on the shared downlink between t=30s and t=60s.
	var cross *netsim.CrossTraffic
	sys.K.At(30*time.Second, func() {
		cross = netsim.StartCrossTraffic(sys.Net, dist.Node, atr.Node, 6000, 43.8e6, 20, netsim.DSCPBestEffort)
	})
	sys.K.At(60*time.Second, func() { cross.Stop() })

	sys.RunUntil(95 * time.Second)

	// The reserved display branch is essentially unaffected.
	displayFrac := float64(displayRecv.Stats.ReceivedTotal) / float64(d.Branches()[0].Stats.SentTotal)
	if displayFrac < 0.99 {
		t.Fatalf("reserved display branch delivered %.3f", displayFrac)
	}
	// The adaptive branch filtered under load and recovered afterwards.
	if adaptive == nil || adaptive.Transitions == 0 {
		t.Fatal("ATR branch never adapted")
	}
	if adaptive.Level() != video.FilterNone {
		t.Fatalf("ATR branch stuck at %v after load cleared", adaptive.Level())
	}
	// During the load window the ATR branch thinned (occasional upward
	// probes allowed) and delivered the bulk of what it sent.
	_, atrRecvPerSec := atrRecv.Stats.PerSecond(95)
	sentPerSec, _ := d.Branches()[1].Stats.PerSecond(95)
	var sentLoad, recvLoad, filteredSeconds int64
	for s := 35; s < 60; s++ {
		sentLoad += sentPerSec[s]
		recvLoad += atrRecvPerSec[s]
		if sentPerSec[s] <= 11 {
			filteredSeconds++
		}
	}
	if filteredSeconds < 20 {
		t.Fatalf("ATR branch ran filtered only %d/25 load seconds", filteredSeconds)
	}
	if frac := float64(recvLoad) / float64(sentLoad); frac < 0.8 {
		t.Fatalf("ATR branch delivered %.2f of sent frames under load", frac)
	}
	// And both receivers got the full rate again near the end (the
	// sources stop at ~t=90, so sample t=88).
	_, dispPerSec := displayRecv.Stats.PerSecond(95)
	if atrRecvPerSec[88] < 28 || dispPerSec[88] < 28 {
		t.Fatalf("pipelines did not recover: atr=%d display=%d", atrRecvPerSec[88], dispPerSec[88])
	}
}
