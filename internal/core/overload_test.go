package core

import (
	"sort"
	"testing"
	"time"

	"repro/internal/orb"
	"repro/internal/rtcorba"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// TestLaneShedsProtectHighBand reproduces the Figure 5 workload shape at
// the middleware layer: a sustained low-priority flood plus a bursty
// high-priority stream sharing one server. With banded lanes and
// admission control, the high band's p99 latency must stay within a
// tight bound while the low band visibly degrades (admission refusals
// and deadline sheds) instead of queueing without limit.
func TestLaneShedsProtectHighBand(t *testing.T) {
	const (
		work         = 4 * time.Millisecond // low lane saturates at 250/s
		lowDeadline  = 40 * time.Millisecond
		highPrio     = rtcorba.Priority(20000)
		dur          = 5 * time.Second
		burstSize    = 5
		burstPeriod  = 100 * time.Millisecond
		highP99Bound = 30 * time.Millisecond
	)
	sys := NewSystem(42)
	cli := sys.AddMachine("cli", rtos.HostConfig{})
	srv := sys.AddMachine("srv", rtos.HostConfig{})
	sys.Link("cli", "srv", LinkSpec{Bps: 100e6, Delay: 200 * time.Microsecond})

	cliORB := cli.ORB(orb.Config{})
	srvORB := srv.ORB(orb.Config{})
	poa, err := srvORB.CreatePOA("app", orb.POAConfig{
		Model: rtcorba.ClientPropagated,
		Lanes: []rtcorba.LaneConfig{
			{Priority: 0, Threads: 1, QueueLimit: 16, HighWatermark: 12},
			{Priority: highPrio, Threads: 1, QueueLimit: 16, HighWatermark: 12},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := poa.Activate("svc", orb.ServantFunc(func(req *orb.ServerRequest) ([]byte, error) {
		req.Thread.Compute(work)
		return nil, nil
	}))
	if err != nil {
		t.Fatal(err)
	}

	// Low-band flood at 2x the lane's capacity, every message carrying a
	// deadline so queue-expired work is shed rather than served late.
	var lowOffered int64
	cli.Host.Spawn("flood", 30, func(th *rtos.Thread) {
		for th.Now() < sim.Time(dur) {
			lowOffered++
			_, _ = cliORB.InvokeOpt(th, ref, "telemetry", nil, orb.InvokeOptions{
				Oneway:   true,
				Priority: 0,
				Deadline: lowDeadline,
			})
			th.Sleep(2 * time.Millisecond) // 500/s
		}
	})

	// Bursty high band: 5 back-to-back synchronous commands every 100ms
	// (50/s average, arriving in clumps as Figure 5's bursty senders do).
	var highLats []time.Duration
	highFailed := 0
	cli.Host.Spawn("bursts", 50, func(th *rtos.Thread) {
		for th.Now() < sim.Time(dur) {
			burstStart := th.Now()
			for i := 0; i < burstSize; i++ {
				start := th.Now()
				_, err := cliORB.InvokeOpt(th, ref, "command", nil, orb.InvokeOptions{
					Priority: highPrio,
				})
				if err != nil {
					highFailed++
					continue
				}
				highLats = append(highLats, time.Duration(th.Now()-start))
			}
			next := burstStart + sim.Time(burstPeriod)
			if th.Now() < next {
				th.Sleep(time.Duration(next - th.Now()))
			}
		}
	})

	sys.RunUntil(sim.Time(dur) + 500*time.Millisecond)

	// High band: everything served, p99 within the bound.
	if highFailed != 0 {
		t.Errorf("high band: %d commands failed", highFailed)
	}
	if len(highLats) == 0 {
		t.Fatal("no high-band samples")
	}
	sort.Slice(highLats, func(i, j int) bool { return highLats[i] < highLats[j] })
	p99 := highLats[len(highLats)*99/100]
	if p99 > highP99Bound {
		t.Errorf("high band p99 = %v, want <= %v under low-band flood", p99, highP99Bound)
	}
	if poa.Pool().Refused(1) != 0 || poa.Pool().Shed(1) != 0 {
		t.Errorf("high lane shed work: refused=%d shed=%d",
			poa.Pool().Refused(1), poa.Pool().Shed(1))
	}

	// Low band: degraded, with both shedding mechanisms engaged, and the
	// lane queue bounded.
	pool := poa.Pool()
	shed := pool.Refused(0) + pool.Shed(0)
	if shed == 0 {
		t.Fatal("low band was not shed despite 2x overload")
	}
	if pool.Refused(0) == 0 {
		t.Error("no admission refusals at the watermark")
	}
	if pool.ShedDeadline(0) == 0 {
		t.Error("no deadline sheds from the lane queue")
	}
	rate := float64(shed) / float64(lowOffered)
	if rate < 0.2 {
		t.Errorf("shed rate %.2f too low for a 2x overload", rate)
	}
	if pool.QueueDepth(0) > 16 {
		t.Errorf("low lane queue depth %d exceeds its limit", pool.QueueDepth(0))
	}
	// Conservation: every offered message is accounted for.
	accounted := pool.Served(0) + pool.Refused(0) + pool.Shed(0) + int64(pool.QueueDepth(0))
	if accounted < lowOffered {
		t.Errorf("accounting hole: offered %d, accounted %d", lowOffered, accounted)
	}
}
