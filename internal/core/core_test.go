package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/avstreams"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/quo"
	"repro/internal/rtos"
	"repro/internal/video"
)

func videoSystem(profile LinkProfile, bps float64) (*System, *Machine, *Machine) {
	sys := NewSystem(1)
	snd := sys.AddMachine("sender", rtos.HostConfig{Quantum: time.Millisecond})
	rcv := sys.AddMachine("receiver", rtos.HostConfig{Quantum: time.Millisecond})
	sys.Link("sender", "receiver", LinkSpec{Bps: bps, Delay: time.Millisecond, Profile: profile})
	return sys, snd, rcv
}

func TestSystemBuilder(t *testing.T) {
	sys := NewSystem(1)
	a := sys.AddMachine("a", rtos.HostConfig{})
	r := sys.AddRouter("r")
	b := sys.AddMachine("b", rtos.HostConfig{})
	sys.Link("a", "r", LinkSpec{Bps: 10e6})
	sys.Link("r", "b", LinkSpec{Bps: 10e6})
	if sys.Machine("a") != a || sys.Router("r") != r || sys.Machine("b") != b {
		t.Fatal("lookup failures")
	}
	route := sys.Net.Route(a.Node.ID(), b.Node.ID())
	if len(route) != 2 {
		t.Fatalf("route length = %d", len(route))
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	sys := NewSystem(1)
	sys.AddMachine("x", rtos.HostConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name accepted")
		}
	}()
	sys.AddRouter("x")
}

func TestLinkProfiles(t *testing.T) {
	for _, p := range []LinkProfile{ProfileBestEffort, ProfileDiffServ, ProfileFullQoS} {
		q := LinkSpec{Profile: p}.qdisc()
		_, capable := q.(netsim.ReservationCapable)
		if capable != (p == ProfileFullQoS) {
			t.Errorf("profile %v reservation-capable = %v", p, capable)
		}
	}
}

func TestApplyThreadPriorityAndDSCP(t *testing.T) {
	sys := NewSystem(1)
	m := sys.AddMachine("m", rtos.HostConfig{Priorities: rtos.RangeQNX})
	qm := NewQoSManager(sys)
	act := &Activity{Name: "video", Priority: 32767}
	th := m.Host.Spawn("worker", 0, func(t *rtos.Thread) {})
	if err := qm.ApplyThreadPriority(act, th, m); err != nil {
		t.Fatal(err)
	}
	if th.Priority() != rtos.RangeQNX.Max {
		t.Fatalf("native priority = %d, want %d", th.Priority(), rtos.RangeQNX.Max)
	}
	if qm.DSCPFor(act) != netsim.DSCPEF {
		t.Fatalf("DSCP = %v, want EF", qm.DSCPFor(act))
	}
	low := &Activity{Name: "bulk", Priority: 100}
	if qm.DSCPFor(low) != netsim.DSCPBestEffort {
		t.Fatalf("low-priority DSCP = %v", qm.DSCPFor(low))
	}
	sys.K.Run()
}

func TestEstablishCPUReservesRollback(t *testing.T) {
	sys := NewSystem(1)
	a := sys.AddMachine("a", rtos.HostConfig{})
	b := sys.AddMachine("b", rtos.HostConfig{})
	qm := NewQoSManager(sys)
	act := &Activity{Name: "x", Priority: 1000}
	// Second spec over-commits b: the first reserve must be rolled back.
	err := qm.EstablishCPUReserves(act,
		CPUSpec{Machine: a, Compute: 10 * time.Millisecond, Period: 100 * time.Millisecond},
		CPUSpec{Machine: b, Compute: 95 * time.Millisecond, Period: 100 * time.Millisecond},
	)
	if err == nil {
		t.Fatal("over-commit accepted")
	}
	if u := a.Host.ResourceKernel().Utilization(); u != 0 {
		t.Fatalf("machine a utilization after rollback = %v", u)
	}
	if len(act.CPUReserves()) != 0 {
		t.Fatalf("activity holds %d reserves after failure", len(act.CPUReserves()))
	}
}

func TestEstablishAndReleaseEndToEnd(t *testing.T) {
	sys, snd, rcv := videoSystem(ProfileFullQoS, 10e6)
	qm := NewQoSManager(sys)
	act := &Activity{Name: "uav", Priority: 20000}
	flow := sys.Net.NewFlowID()
	snd.Host.Spawn("setup", 50, func(th *rtos.Thread) {
		if err := qm.EstablishCPUReserves(act,
			CPUSpec{Machine: snd, Compute: 20 * time.Millisecond, Period: 100 * time.Millisecond},
			CPUSpec{Machine: rcv, Compute: 20 * time.Millisecond, Period: 100 * time.Millisecond},
		); err != nil {
			t.Errorf("cpu reserves: %v", err)
			return
		}
		if err := qm.EstablishBandwidth(th.Proc(), act, flow, snd, rcv, 1.5e6, 16*1024); err != nil {
			t.Errorf("bandwidth: %v", err)
			return
		}
		act.Release()
	})
	sys.RunUntil(2 * time.Second)
	if u := snd.Host.ResourceKernel().Utilization(); u != 0 {
		t.Fatalf("sender utilization after release = %v", u)
	}
	for _, l := range sys.Net.Links() {
		if rc, ok := l.Queue().(netsim.ReservationCapable); ok && rc.ReservedRate() != 0 {
			t.Fatalf("link %v still reserved after release", l)
		}
	}
}

func TestPriorityDrivenReservations(t *testing.T) {
	// Three activities compete for a 10 Mbps bottleneck (9 Mbps
	// reservable). High gets its full 6 Mbps; mid degrades to within
	// what is left; low is denied (no floor).
	sys, snd, rcv := videoSystem(ProfileFullQoS, 10e6)
	qm := NewQoSManager(sys)
	high := &Activity{Name: "high", Priority: 30000}
	mid := &Activity{Name: "mid", Priority: 20000}
	low := &Activity{Name: "low", Priority: 1000}
	var results []AllocationResult
	snd.Host.Spawn("alloc", 50, func(th *rtos.Thread) {
		results = qm.PriorityDrivenReservations(th.Proc(), []ReservationRequest{
			{Activity: low, Flow: sys.Net.NewFlowID(), Src: snd, Dst: rcv, RateBps: 4e6},
			{Activity: high, Flow: sys.Net.NewFlowID(), Src: snd, Dst: rcv, RateBps: 6e6},
			{Activity: mid, Flow: sys.Net.NewFlowID(), Src: snd, Dst: rcv, RateBps: 6e6, MinRateBps: 1e6},
		})
	})
	sys.RunUntil(5 * time.Second)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// Results come back in priority order: high, mid, low.
	if results[0].Request.Activity != high || results[0].GrantedBps != 6e6 {
		t.Fatalf("high allocation = %+v", results[0])
	}
	if results[1].Request.Activity != mid || results[1].GrantedBps <= 0 || results[1].GrantedBps > 3e6 {
		t.Fatalf("mid allocation = %+v", results[1])
	}
	if results[2].Request.Activity != low || !errors.Is(results[2].Err, ErrDenied) {
		t.Fatalf("low allocation = %+v", results[2])
	}
}

func TestVideoAdaptationEscalatesAndRecovers(t *testing.T) {
	sys, snd, rcv := videoSystem(ProfileFullQoS, 10e6)
	recv := rcv.AV().CreateReceiver(5000, 50, nil)
	sender := snd.AV().CreateSender(5001)

	var va *VideoAdaptation
	snd.Host.Spawn("source", 50, func(th *rtos.Thread) {
		st, err := sender.Bind(th.Proc(), recv.Addr(), avstreams.QoS{})
		if err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		va = sys.NewVideoAdaptation(st, recv, VideoAdaptationConfig{})
		st.RunSource(th, video.NewGenerator(video.StreamConfig{}), 90*time.Second)
	})

	// Heavy cross traffic between t=10s and t=40s.
	var cross *netsim.CrossTraffic
	sys.K.After(10*time.Second, func() {
		cross = netsim.StartCrossTraffic(sys.Net, snd.Node, rcv.Node, 6000, 40e6, 40, netsim.DSCPBestEffort)
	})
	sys.K.After(40*time.Second, func() { cross.Stop() })

	sys.RunUntil(9 * time.Second)
	if va == nil || va.Level() != video.FilterNone {
		t.Fatalf("filtering before load: %v", va.Level())
	}
	sys.RunUntil(35 * time.Second)
	if va.Level() == video.FilterNone {
		t.Fatal("adaptation did not escalate under load")
	}
	sys.RunUntil(80 * time.Second)
	if va.Level() != video.FilterNone {
		t.Fatalf("adaptation did not recover after load: %v", va.Level())
	}
	if va.Transitions < 2 {
		t.Fatalf("transitions = %d", va.Transitions)
	}
}

func TestRemoteCondPollsThroughORB(t *testing.T) {
	sys := NewSystem(1)
	cli := sys.AddMachine("cli", rtos.HostConfig{})
	srv := sys.AddMachine("srv", rtos.HostConfig{})
	sys.Link("cli", "srv", LinkSpec{Bps: 10e6, Delay: time.Millisecond})

	// The server exposes a value that ramps over time.
	value := 0.0
	srvORB := srv.ORB(orb.Config{})
	poa, err := srvORB.CreatePOA("metrics", orb.POAConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := poa.Activate("cpu", DoubleServant(func() float64 { return value }))
	if err != nil {
		t.Fatal(err)
	}
	sys.K.At(time.Second, func() { value = 0.75 })

	cliORB := cli.ORB(orb.Config{})
	rc := sys.NewRemoteCond("remote-cpu", cliORB, cli, ref, "read", 100*time.Millisecond, 20000)

	// A contract reacting to the remote condition.
	contract := quo.NewContract("watch", 100*time.Millisecond).
		AddCondition(rc).
		AddRegion(quo.Region{Name: "hot", When: func(v quo.Values) bool { return v["remote-cpu"] > 0.5 }}).
		AddRegion(quo.Region{Name: "cool"})
	contract.Start(sys.K)

	sys.RunUntil(900 * time.Millisecond)
	if rc.Value() != 0 || contract.Region() != "cool" {
		t.Fatalf("before ramp: value=%v region=%q", rc.Value(), contract.Region())
	}
	sys.RunUntil(2 * time.Second)
	if rc.Value() != 0.75 {
		t.Fatalf("after ramp: value=%v", rc.Value())
	}
	if contract.Region() != "hot" {
		t.Fatalf("region = %q", contract.Region())
	}
	if rc.Errors != 0 || rc.Polls < 10 {
		t.Fatalf("polls=%d errors=%d", rc.Polls, rc.Errors)
	}
	rc.Stop()
	contract.Stop()
}
