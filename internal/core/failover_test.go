package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/avstreams"
	"repro/internal/ft"
	"repro/internal/orb"
	"repro/internal/quo"
	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/video"
)

// TestFailoverOnHostCrashMidInvocation kills the primary's host while a
// dispatch is executing on it: the client must time out the attempt and
// transparently complete on the backup.
func TestFailoverOnHostCrashMidInvocation(t *testing.T) {
	sys := NewSystem(1)
	cli := sys.AddMachine("cli", rtos.HostConfig{})
	s1 := sys.AddMachine("s1", rtos.HostConfig{})
	s2 := sys.AddMachine("s2", rtos.HostConfig{})
	sys.Link("cli", "s1", LinkSpec{Bps: 100e6, Delay: 100 * time.Microsecond})
	sys.Link("cli", "s2", LinkSpec{Bps: 100e6, Delay: 100 * time.Microsecond})

	cliORB := cli.ORB(orb.Config{AttemptTimeout: 200 * time.Millisecond})
	slowCalls, fastCalls := 0, 0
	poa1, _ := s1.ORB(orb.Config{}).CreatePOA("app", orb.POAConfig{})
	ref1, _ := poa1.Activate("obj", orb.ServantFunc(func(req *orb.ServerRequest) ([]byte, error) {
		slowCalls++
		req.Thread.Compute(time.Second) // the crash lands mid-compute
		return req.Body, nil
	}))
	poa2, _ := s2.ORB(orb.Config{}).CreatePOA("app", orb.POAConfig{})
	ref2, _ := poa2.Activate("obj", orb.ServantFunc(func(req *orb.ServerRequest) ([]byte, error) {
		fastCalls++
		return req.Body, nil
	}))

	gm := ft.NewGroupManager()
	g, err := gm.CreateGroup(ref1, ref2)
	if err != nil {
		t.Fatal(err)
	}
	ref := g.Ref()

	sys.K.At(150*time.Millisecond, func() { ft.CrashHost(s1.Host, s1.Node) })

	var reply []byte
	var callErr error
	var doneAt sim.Time
	cli.Host.Spawn("caller", 50, func(th *rtos.Thread) {
		th.Sleep(100 * time.Millisecond)
		reply, callErr = cliORB.Invoke(th, ref, "work", []byte("payload"))
		doneAt = th.Now()
	})
	sys.RunUntil(5 * time.Second)

	if callErr != nil {
		t.Fatalf("invocation across host crash: %v", callErr)
	}
	if string(reply) != "payload" {
		t.Fatalf("reply = %q", reply)
	}
	if slowCalls != 1 || fastCalls != 1 {
		t.Fatalf("dispatches: primary %d backup %d, want 1 each", slowCalls, fastCalls)
	}
	// 100ms start + 200ms attempt timeout + backoff + fast retry.
	if d := time.Duration(doneAt); d > 600*time.Millisecond {
		t.Fatalf("failover completed at %v, too slow", d)
	}
}

// e2eResult captures the observable outcomes of the kill-primary
// end-to-end scenario for both the assertions and the determinism check.
type e2eResult struct {
	region        string
	regionHistory []string
	failoverSpans int
	invokeOK      int
	invokeFail    int
	recvPrimary   int64
	recvBackup    int64
	maxGap        time.Duration
	detectLatency time.Duration
}

// runKillPrimaryE2E builds a 3-replica group with a replicated A/V
// sink, kills the primary mid-stream, and records how the system
// recovers. Deterministic given the seed.
func runKillPrimaryE2E(seed int64) *e2eResult {
	const (
		period  = 100 * time.Millisecond
		crashAt = 2 * time.Second
		endAt   = 4 * time.Second
	)
	sys := NewSystem(seed)
	cli := sys.AddMachine("cli", rtos.HostConfig{})
	names := []string{"s1", "s2", "s3"}
	var machines []*Machine
	for _, n := range names {
		m := sys.AddMachine(n, rtos.HostConfig{})
		sys.Link("cli", n, LinkSpec{Bps: 100e6, Delay: 200 * time.Microsecond})
		machines = append(machines, m)
	}

	cliORB := cli.ORB(orb.Config{AttemptTimeout: 100 * time.Millisecond, BackoffBase: 5 * time.Millisecond})
	tr := trace.NewTracer(sys.K)
	cliORB.EnableTracing(tr)

	// Replicated servant + per-host detector + A/V receiver on each.
	gm := ft.NewGroupManager()
	var refs []*orb.ObjectRef
	var recvs []*avstreams.Receiver
	monitor := ft.NewMonitor(cliORB, ft.MonitorConfig{Period: period, SuspectAfter: 1, Priority: -1})
	for i, m := range machines {
		o := m.ORB(orb.Config{})
		poa, _ := o.CreatePOA("app", orb.POAConfig{})
		ref, _ := poa.Activate("obj", orb.ServantFunc(func(req *orb.ServerRequest) ([]byte, error) {
			req.Thread.Compute(time.Millisecond)
			return req.Body, nil
		}))
		refs = append(refs, ref)
		det, err := ft.RegisterDetector(o, 30000)
		if err != nil {
			panic(err)
		}
		monitor.Watch(names[i], det)
		recvs = append(recvs, m.AV().CreateReceiver(6000, 60, nil))
	}
	g, err := gm.CreateGroup(refs...)
	if err != nil {
		panic(err)
	}
	groupRef := g.Ref()

	res := &e2eResult{}
	var deadAt sim.Time
	monitor.OnChange(func(name string, alive bool) {
		if name == "s1" && !alive && deadAt == 0 {
			deadAt = sys.K.Now()
		}
	})

	// QuO contract: liveness of the primary drives the operating region.
	contract := quo.NewContract("replica-health", 20*time.Millisecond).
		AddCondition(monitor.LivenessCond("s1")).
		AddCondition(monitor.FractionAliveCond()).
		AddRegion(quo.Region{Name: "normal", When: func(v quo.Values) bool { return v["alive:s1"] == 1 }}).
		AddRegion(quo.Region{Name: "degraded: running on backup", When: func(v quo.Values) bool { return v["alive-fraction"] > 0 }}).
		AddRegion(quo.Region{Name: "down"})
	contract.OnTransition(func(from, to string, v quo.Values) {
		res.regionHistory = append(res.regionHistory, to)
	})

	monitor.Start(90)
	contract.Start(sys.K)

	// Replicated A/V sink: stream to the first alive replica.
	sender := cli.AV().CreateSender(6001)
	cli.Host.Spawn("source", 50, func(th *rtos.Thread) {
		st, err := sender.Bind(th.Proc(), recvs[0].Addr(), avstreams.QoS{})
		if err != nil {
			panic(err)
		}
		targets := make([]ft.StreamTarget, len(names))
		for i, n := range names {
			targets[i] = ft.StreamTarget{Name: n, Addr: recvs[i].Addr()}
		}
		ft.BindStreamFailover(monitor, st, targets)
		st.RunSource(th, video.NewGenerator(video.StreamConfig{}), endAt)
	})

	// Control-plane traffic: periodic invocations on the group.
	cli.Host.Spawn("invoker", 50, func(th *rtos.Thread) {
		for th.Now() < sim.Time(endAt) {
			_, err := cliORB.Invoke(th, groupRef, "work", []byte("x"))
			if err != nil {
				res.invokeFail++
			} else {
				res.invokeOK++
			}
			th.Sleep(50 * time.Millisecond)
		}
	})

	sys.K.At(crashAt, func() { ft.CrashHost(machines[0].Host, machines[0].Node) })
	sys.RunUntil(endAt + 500*time.Millisecond)

	res.region = contract.Region()
	res.recvPrimary = recvs[0].Stats.ReceivedTotal
	res.recvBackup = recvs[1].Stats.ReceivedTotal
	if deadAt > 0 {
		res.detectLatency = time.Duration(deadAt - sim.Time(crashAt))
	}
	for _, s := range tr.Collector().Spans() {
		if s.Name == "failover" && s.Layer == trace.LayerFT {
			res.failoverSpans++
		}
	}
	// Largest inter-arrival gap across all replicas' receivers — the
	// stream outage window around the failover.
	var all []sim.Time
	all = append(all, recvs[0].ArrivalTimes()...)
	all = append(all, recvs[1].ArrivalTimes()...)
	all = append(all, recvs[2].ArrivalTimes()...)
	for i := 1; i < len(all); i++ {
		if gap := time.Duration(all[i] - all[i-1]); gap > res.maxGap {
			res.maxGap = gap
		}
	}
	return res
}

// TestKillPrimaryEndToEnd is the acceptance scenario: a 3-replica group
// under live A/V and invocation traffic loses its primary; the pipeline
// must resume on the backup within two detector periods, the QuO
// contract must report the degraded region, and the failover must be
// visible as a trace span.
func TestKillPrimaryEndToEnd(t *testing.T) {
	res := runKillPrimaryE2E(42)
	const period = 100 * time.Millisecond

	if res.region != "degraded: running on backup" {
		t.Fatalf("contract region = %q, want degraded", res.region)
	}
	wantHistory := []string{"normal", "degraded: running on backup"}
	if len(res.regionHistory) != 2 || res.regionHistory[0] != wantHistory[0] || res.regionHistory[1] != wantHistory[1] {
		t.Fatalf("region history = %v, want %v", res.regionHistory, wantHistory)
	}
	if res.invokeFail != 0 {
		t.Fatalf("%d invocations failed despite failover (ok=%d)", res.invokeFail, res.invokeOK)
	}
	// ~38 invocations pre-crash at the 50ms cadence; post-crash each one
	// pays the 100ms attempt timeout before failing over, so the cadence
	// roughly halves.
	if res.invokeOK < 45 {
		t.Fatalf("only %d invocations completed", res.invokeOK)
	}
	if res.failoverSpans == 0 {
		t.Fatal("no failover span recorded in the trace")
	}
	if res.recvPrimary == 0 || res.recvBackup == 0 {
		t.Fatalf("frames: primary %d backup %d — pipeline did not resume", res.recvPrimary, res.recvBackup)
	}
	if res.detectLatency <= 0 || res.detectLatency > period+period/2 {
		t.Fatalf("detection latency %v, want within 1.5 periods", res.detectLatency)
	}
	// Failover latency bound: the stream outage (frame gap) must stay
	// within two detector periods (frame interval slack included).
	if res.maxGap > 2*period {
		t.Fatalf("stream outage %v exceeds 2 detector periods (%v)", res.maxGap, 2*period)
	}
}

// TestKillPrimaryE2EDeterministic reruns the scenario and demands
// identical observable results — the repeatability half of the
// acceptance criteria at the API level (the qosfailover command pins
// the byte-identical text form).
func TestKillPrimaryE2EDeterministic(t *testing.T) {
	a, b := runKillPrimaryE2E(42), runKillPrimaryE2E(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated runs diverged:\n a=%+v\n b=%+v", a, b)
	}
}
