package core

import (
	"time"

	"repro/internal/avstreams"
	"repro/internal/quo"
	"repro/internal/video"
)

// VideoAdaptation is the packaged QuO behaviour ("qosket") that watches a
// stream's delivery quality and adjusts frame filtering to the rate the
// network will support — the paper's dynamic reaction that filtered
// frames down to 10 fps or 2 fps under load, and back up when the load
// cleared.
type VideoAdaptation struct {
	Qosket   *quo.Qosket
	stream   *avstreams.Stream
	receiver *avstreams.Receiver
	loss     *quo.EWMACond

	lastSent int64
	lastRecv int64
	quiet    int // consecutive clean windows, for recovery hysteresis
	backoff  int // doubles after each failed upward probe
	probing  bool

	// Levels holds the filter ladder from least to most aggressive.
	Levels []video.FilterLevel
	level  int

	// Transitions counts filter level changes.
	Transitions int64
}

// VideoAdaptationConfig tunes the adaptation qosket.
type VideoAdaptationConfig struct {
	// Window is the sampling/evaluation period. Defaults to 1s.
	Window time.Duration
	// EscalateLoss is the loss fraction above which filtering
	// escalates. Defaults to 0.08: a stream that cannot deliver ~92%
	// of its (already filtered) frames does not fit and must thin
	// further.
	EscalateLoss float64
	// RecoverLoss is the loss fraction below which the stream is
	// considered clean. Defaults to 0.02.
	RecoverLoss float64
	// RecoverAfter is how many consecutive clean windows precede a
	// de-escalation (an upward probe). Defaults to 6: probing too
	// eagerly costs frames every time the network is still loaded.
	RecoverAfter int
}

func (c *VideoAdaptationConfig) defaults() {
	if c.Window == 0 {
		c.Window = time.Second
	}
	if c.EscalateLoss == 0 {
		c.EscalateLoss = 0.08
	}
	if c.RecoverLoss == 0 {
		c.RecoverLoss = 0.02
	}
	if c.RecoverAfter == 0 {
		c.RecoverAfter = 6
	}
}

// NewVideoAdaptation wires the qosket between a sender-side stream and
// its receiver and starts periodic contract evaluation. The receiver's
// delivery statistics stand in for the A/V service's control channel
// feedback.
func (s *System) NewVideoAdaptation(stream *avstreams.Stream, recv *avstreams.Receiver, cfg VideoAdaptationConfig) *VideoAdaptation {
	cfg.defaults()
	va := &VideoAdaptation{
		stream:   stream,
		receiver: recv,
		loss:     quo.NewEWMACond("loss", 0.5),
		Levels:   []video.FilterLevel{video.FilterNone, video.FilterIP, video.FilterIOnly},
		backoff:  1,
	}

	contract := quo.NewContract("video-adaptation", cfg.Window).
		AddRegion(quo.Region{Name: "overloaded", When: func(v quo.Values) bool {
			return v["loss"] > cfg.EscalateLoss
		}}).
		AddRegion(quo.Region{Name: "clean", When: func(v quo.Values) bool {
			return v["loss"] < cfg.RecoverLoss
		}}).
		AddRegion(quo.Region{Name: "marginal"})
	va.Qosket = quo.NewQosket("video-adaptation", contract, va.loss)

	// The probe updates the loss condition from the delivery counters
	// just before each contract evaluation.
	var tick func()
	tick = func() {
		va.sample()
		contract.Eval()
		va.apply(cfg)
		s.K.After(cfg.Window, tick)
	}
	s.K.After(cfg.Window, tick)
	return va
}

// sample folds the last window's delivery into the loss condition.
func (va *VideoAdaptation) sample() {
	sent := va.stream.Stats.SentTotal
	recv := va.receiver.Stats.ReceivedTotal
	dSent := sent - va.lastSent
	dRecv := recv - va.lastRecv
	va.lastSent = sent
	va.lastRecv = recv
	if dSent == 0 {
		return
	}
	loss := 1 - float64(dRecv)/float64(dSent)
	if loss < 0 {
		loss = 0
	}
	va.loss.Observe(loss)
}

// apply adjusts the filter ladder per the contract region.
func (va *VideoAdaptation) apply(cfg VideoAdaptationConfig) {
	switch va.Qosket.Contract.Region() {
	case "overloaded":
		va.quiet = 0
		if va.probing {
			// The upward probe failed: back off exponentially so
			// repeated probing does not bleed frames while the load
			// persists.
			va.probing = false
			if va.backoff < 8 {
				va.backoff *= 2
			}
		}
		if va.level < len(va.Levels)-1 {
			if va.loss.Value() > 0.5 {
				// Catastrophic loss: jump straight to the most
				// aggressive level ("10 fps or 2 fps, whichever the
				// network would support") instead of bleeding frames
				// while stepping down one rung per window.
				va.level = len(va.Levels) - 1
			} else {
				va.level++
			}
			va.stream.SetFilter(va.Levels[va.level])
			va.Transitions++
			// Re-baseline the smoothed loss so the new level gets a
			// fair evaluation window.
			va.loss.Observe(0)
		}
	case "clean":
		va.quiet++
		if va.probing {
			// The probe held for a clean window: accept the new level
			// and reset the backoff.
			va.probing = false
			va.backoff = 1
		}
		if va.quiet >= cfg.RecoverAfter*va.backoff && va.level > 0 {
			va.quiet = 0
			va.level--
			va.probing = true
			va.stream.SetFilter(va.Levels[va.level])
			va.Transitions++
		}
	default:
		va.quiet = 0
	}
}

// Level returns the current position in the filter ladder.
func (va *VideoAdaptation) Level() video.FilterLevel { return va.Levels[va.level] }
