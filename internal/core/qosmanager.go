package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/rtcorba"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Activity is one end-to-end application activity (a stream or an
// invocation path) whose resources the QoSManager coordinates.
type Activity struct {
	Name string
	// Priority is the activity's global CORBA priority.
	Priority rtcorba.Priority

	cpuReserves []*rtos.Reserve
	netResv     *netsim.Reservation
}

// CPUReserves returns the CPU reservations established for the activity.
func (a *Activity) CPUReserves() []*rtos.Reserve { return a.cpuReserves }

// NetworkReservation returns the bandwidth reservation, or nil.
func (a *Activity) NetworkReservation() *netsim.Reservation { return a.netResv }

// Release returns every resource held by the activity.
func (a *Activity) Release() {
	for _, r := range a.cpuReserves {
		r.Cancel()
	}
	a.cpuReserves = nil
	if a.netResv != nil {
		a.netResv.Release()
		a.netResv = nil
	}
}

// QoSManager coordinates priority- and reservation-based mechanisms
// end to end across a System.
type QoSManager struct {
	sys *System
	// Mapping converts CORBA priorities to native priorities per host.
	Mapping *rtcorba.MappingManager
	// DSCPMapping converts CORBA priorities to network codepoints.
	DSCPMapping rtcorba.NetworkPriorityMapping
}

// NewQoSManager creates a manager with the default linear priority
// mapping and a two-band DSCP mapping (priorities >= 16000 ride EF).
func NewQoSManager(sys *System) *QoSManager {
	return &QoSManager{
		sys:     sys,
		Mapping: rtcorba.NewMappingManager(),
		DSCPMapping: rtcorba.BandedDSCPMapping{Bands: []rtcorba.DSCPBand{
			{From: 0, DSCP: netsim.DSCPBestEffort},
			{From: 16000, DSCP: netsim.DSCPEF},
		}},
	}
}

// NativePriority maps an activity priority onto a machine's range.
func (q *QoSManager) NativePriority(p rtcorba.Priority, m *Machine) (rtos.Priority, error) {
	n, ok := q.Mapping.ToNative(p, m.Host.Priorities())
	if !ok {
		return 0, fmt.Errorf("core: priority %d does not map on %s", p, m.Name())
	}
	return n, nil
}

// ApplyThreadPriority sets a thread's native priority from the activity's
// CORBA priority — the OS half of a priority path.
func (q *QoSManager) ApplyThreadPriority(a *Activity, t *rtos.Thread, m *Machine) error {
	n, err := q.NativePriority(a.Priority, m)
	if err != nil {
		return err
	}
	t.SetPriority(n)
	return nil
}

// DSCPFor returns the network codepoint for the activity — the network
// half of a priority path.
func (q *QoSManager) DSCPFor(a *Activity) netsim.DSCP {
	return q.DSCPMapping.ToDSCP(a.Priority)
}

// CPUSpec asks for a CPU reservation on one machine.
type CPUSpec struct {
	Machine *Machine
	Compute time.Duration
	Period  time.Duration
	Policy  rtos.EnforcementPolicy
}

// EstablishCPUReserves sets up CPU reservations for the activity on each
// listed machine, attaching them to the activity for later release. On
// any admission failure the already-established reserves are rolled back.
func (q *QoSManager) EstablishCPUReserves(a *Activity, specs ...CPUSpec) error {
	var done []*rtos.Reserve
	for _, spec := range specs {
		r, err := spec.Machine.Host.ResourceKernel().Reserve(spec.Compute, spec.Period, spec.Policy)
		if err != nil {
			for _, d := range done {
				d.Cancel()
			}
			return fmt.Errorf("core: CPU reserve on %s: %w", spec.Machine.Name(), err)
		}
		done = append(done, r)
	}
	a.cpuReserves = append(a.cpuReserves, done...)
	return nil
}

// EstablishBandwidth performs RSVP signalling for the activity's flow.
// It must run on a simulation process.
func (q *QoSManager) EstablishBandwidth(p *sim.Proc, a *Activity, flow netsim.FlowID, src, dst *Machine, rateBps float64, burst int) error {
	resv, err := q.sys.Net.ReserveFlow(p, netsim.ReservationSpec{
		Flow:       flow,
		Src:        src.Node,
		Dst:        dst.Node,
		RateBps:    rateBps,
		BurstBytes: burst,
	})
	if err != nil {
		return fmt.Errorf("core: bandwidth reserve %s->%s: %w", src.Name(), dst.Name(), err)
	}
	a.netResv = resv
	return nil
}

// ReservationRequest is one competing request in priority-driven
// reservation allocation.
type ReservationRequest struct {
	Activity *Activity
	Flow     netsim.FlowID
	Src, Dst *Machine
	// RateBps is the preferred reservation rate.
	RateBps float64
	// MinRateBps is the smallest acceptable rate (a partial
	// reservation); zero means all-or-nothing.
	MinRateBps float64
	Burst      int
}

// AllocationResult reports the outcome for one request.
type AllocationResult struct {
	Request ReservationRequest
	// GrantedBps is the reserved rate (0 if denied).
	GrantedBps float64
	Err        error
}

// ErrDenied marks requests that priority-driven allocation rejected for
// lack of remaining capacity.
var ErrDenied = errors.New("core: reservation denied by priority-driven allocation")

// PriorityDrivenReservations implements the paper's proposed combination
// of the two paradigms: the priority paradigm drives who gets
// reservations and to what degree. Requests are served in descending
// activity priority; each gets its preferred rate if the network admits
// it, else the request degrades toward MinRateBps before being denied.
// It must run on a simulation process.
func (q *QoSManager) PriorityDrivenReservations(p *sim.Proc, reqs []ReservationRequest) []AllocationResult {
	ordered := make([]ReservationRequest, len(reqs))
	copy(ordered, reqs)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Activity.Priority > ordered[j].Activity.Priority
	})
	results := make([]AllocationResult, 0, len(ordered))
	for _, req := range ordered {
		res := AllocationResult{Request: req}
		rate := req.RateBps
		for {
			err := q.EstablishBandwidth(p, req.Activity, req.Flow, req.Src, req.Dst, rate, req.Burst)
			if err == nil {
				res.GrantedBps = rate
				break
			}
			if !errors.Is(err, netsim.ErrLinkAdmission) || req.MinRateBps <= 0 || rate <= req.MinRateBps {
				res.Err = fmt.Errorf("%w: %v", ErrDenied, err)
				break
			}
			// Degrade by half toward the floor and retry.
			rate /= 2
			if rate < req.MinRateBps {
				rate = req.MinRateBps
			}
		}
		results = append(results, res)
	}
	return results
}
