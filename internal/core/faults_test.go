package core

import (
	"testing"
	"time"

	"repro/internal/avstreams"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/rtos"
	"repro/internal/video"
)

// TestInvocationSurvivesLinkFlap drives a CORBA invocation across a link
// that goes down mid-call: the transport's retransmission must deliver
// the request and reply once the link recovers.
func TestInvocationSurvivesLinkFlap(t *testing.T) {
	sys := NewSystem(1)
	cli := sys.AddMachine("cli", rtos.HostConfig{})
	srv := sys.AddMachine("srv", rtos.HostConfig{})
	sys.Link("cli", "srv", LinkSpec{Bps: 10e6, Delay: time.Millisecond})

	srvORB := srv.ORB(orb.Config{})
	cliORB := cli.ORB(orb.Config{})
	poa, _ := srvORB.CreatePOA("app", orb.POAConfig{})
	ref, _ := poa.Activate("echo", orb.ServantFunc(func(req *orb.ServerRequest) ([]byte, error) {
		return req.Body, nil
	}))

	// Take both directions down just before the call, recover at t=3s.
	links := sys.Net.Links()
	sys.K.At(90*time.Millisecond, func() {
		for _, l := range links {
			l.SetDown(true)
		}
	})
	sys.K.At(3*time.Second, func() {
		for _, l := range links {
			l.SetDown(false)
		}
	})

	var reply []byte
	var err error
	var doneAt time.Duration
	cli.Host.Spawn("caller", 10, func(th *rtos.Thread) {
		th.Sleep(100 * time.Millisecond)
		reply, err = cliORB.Invoke(th, ref, "op", []byte("ping"))
		doneAt = time.Duration(th.Now())
	})
	sys.RunUntil(30 * time.Second)
	if err != nil {
		t.Fatalf("invoke across flapping link: %v", err)
	}
	if string(reply) != "ping" {
		t.Fatalf("reply = %q", reply)
	}
	if doneAt < 3*time.Second {
		t.Fatalf("call completed at %v, before the link recovered", doneAt)
	}
}

// TestStreamOverLossyLink checks the video data path degrades
// proportionally (not catastrophically or silently) under random link
// loss, and that accounting stays consistent.
func TestStreamOverLossyLink(t *testing.T) {
	sys := NewSystem(1)
	snd := sys.AddMachine("snd", rtos.HostConfig{})
	rcv := sys.AddMachine("rcv", rtos.HostConfig{})
	sys.Link("snd", "rcv", LinkSpec{Bps: 10e6, Delay: time.Millisecond})
	sys.Net.Links()[0].SetLossRate(0.05)

	recv := rcv.AV().CreateReceiver(5000, 50, nil)
	sender := snd.AV().CreateSender(5001)
	var st *avstreams.Stream
	snd.Host.Spawn("source", 50, func(th *rtos.Thread) {
		var err error
		st, err = sender.Bind(th.Proc(), recv.Addr(), avstreams.QoS{})
		if err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		st.RunSource(th, video.NewGenerator(video.StreamConfig{}), 20*time.Second)
	})
	sys.RunUntil(25 * time.Second)
	frac := float64(recv.Stats.ReceivedTotal) / float64(st.Stats.SentTotal)
	// Frames average ~3.5 fragments; 5% fragment loss kills roughly
	// 1-(0.95^3.5) ~ 16% of frames. Accept a generous band.
	if frac < 0.70 || frac > 0.95 {
		t.Fatalf("delivered fraction %.3f under 5%% fragment loss, want ~0.84", frac)
	}
}

// TestAdaptationReactsToLinkLoss: heavy injected loss looks like
// congestion to the QuO contract; the filter must escalate (even though
// thinning cannot cure random loss, the contract must not sit idle) and
// de-escalate after the loss clears.
func TestAdaptationReactsToLinkLoss(t *testing.T) {
	sys := NewSystem(1)
	snd := sys.AddMachine("snd", rtos.HostConfig{})
	rcv := sys.AddMachine("rcv", rtos.HostConfig{})
	sys.Link("snd", "rcv", LinkSpec{Bps: 10e6, Delay: time.Millisecond})
	link := sys.Net.Links()[0]

	recv := rcv.AV().CreateReceiver(5000, 50, nil)
	sender := snd.AV().CreateSender(5001)
	var va *VideoAdaptation
	snd.Host.Spawn("source", 50, func(th *rtos.Thread) {
		st, err := sender.Bind(th.Proc(), recv.Addr(), avstreams.QoS{})
		if err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		va = sys.NewVideoAdaptation(st, recv, VideoAdaptationConfig{})
		st.RunSource(th, video.NewGenerator(video.StreamConfig{}), 60*time.Second)
	})
	sys.K.At(10*time.Second, func() { link.SetLossRate(0.4) })
	sys.K.At(30*time.Second, func() { link.SetLossRate(0) })

	sys.RunUntil(25 * time.Second)
	if va.Level() == video.FilterNone {
		t.Fatal("adaptation ignored 40% link loss")
	}
	sys.RunUntil(65 * time.Second)
	if va.Level() != video.FilterNone {
		t.Fatalf("adaptation stuck at %v after loss cleared", va.Level())
	}
}

// TestSoftStateSurvivesSignallingLoss: RSVP refreshes ride a lossy
// control path; the 3-refreshes-per-lifetime margin must keep the
// reservation installed.
func TestSoftStateSurvivesSignallingLoss(t *testing.T) {
	sys := NewSystem(1)
	snd := sys.AddMachine("snd", rtos.HostConfig{})
	rcv := sys.AddMachine("rcv", rtos.HostConfig{})
	sys.Link("snd", "rcv", LinkSpec{Bps: 10e6, Delay: time.Millisecond, Profile: ProfileFullQoS})
	link := sys.Net.Links()[0]

	var resv *netsim.Reservation
	snd.Host.Spawn("setup", 50, func(th *rtos.Thread) {
		var err error
		resv, err = sys.Net.ReserveFlow(th.Proc(), netsim.ReservationSpec{
			Flow: sys.Net.NewFlowID(), Src: snd.Node, Dst: rcv.Node,
			RateBps: 1e6, SoftLifetime: 3 * time.Second,
		})
		if err != nil {
			t.Errorf("reserve: %v", err)
			return
		}
		// 20% loss on the control path from t=2s on.
		link.SetLossRate(0.2)
	})
	sys.RunUntil(60 * time.Second)
	if resv == nil || !resv.Active() {
		t.Fatal("reservation not established")
	}
	for _, l := range resv.Links() {
		if l.Queue().(netsim.ReservationCapable).ReservedRate() != 1e6 {
			t.Fatalf("soft state lost under 20%% signalling loss on %v", l)
		}
	}
}
