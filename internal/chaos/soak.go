package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// SoakConfig parameterises RunSoak. The zero value (plus nothing else)
// runs the default seeded soak: 10k logical requests, mixed EF/BE,
// latency torture on the BE primary and a kill/restart of it mid-run.
type SoakConfig struct {
	// Seed fixes every random stream in the run (0 = 1).
	Seed int64
	// Requests is the total logical request count (default 10000).
	Requests int
	// Concurrency caps in-flight requests (default 64).
	Concurrency int
	// EFEvery makes every Nth request expedited (default 3).
	EFEvery int
	// RequestTimeout bounds each logical request end to end, failover
	// attempts included (default 750ms).
	RequestTimeout time.Duration
	// WarmFraction is the share of requests issued fault-free first to
	// establish the latency baseline (default 0.25).
	WarmFraction float64
	// TortureLatency is the per-chunk latency injected on the BE
	// primary's proxy during the fault phase (default 25ms).
	TortureLatency time.Duration
	// KillFor is how long the BE primary stays dead mid-fault-phase
	// (default 400ms).
	KillFor time.Duration
	// Bus and Tracer, when set, receive the run's chaos/failover/health
	// records and spans.
	Bus    *events.Bus
	Tracer *wire.Tracer
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// SoakReport is the measured outcome of one soak run, including the
// values the invariants are asserted against.
type SoakReport struct {
	Seed     int64          `json:"seed"`
	Requests int            `json:"requests"`
	Outcomes map[string]int `json:"outcomes"`

	// Duplicates counts logical requests the servants executed more
	// than once — the at-most-once invariant demands zero.
	Duplicates int `json:"duplicates"`
	// Lost counts issued requests that never completed — the no-silence
	// invariant demands zero (every request ends in a reply or a
	// classified refusal/timeout).
	Lost int `json:"lost"`
	// Unclassified counts completions outside the known error taxonomy
	// (must be zero: silence and mystery are both losses).
	Unclassified int `json:"unclassified"`

	EFBaselineN     int     `json:"ef_baseline_n"`
	EFBaselineP50Ms float64 `json:"ef_baseline_p50_ms"`
	EFBaselineP95Ms float64 `json:"ef_baseline_p95_ms"`
	EFBaselineP99Ms float64 `json:"ef_baseline_p99_ms"`
	EFFaultN        int     `json:"ef_fault_n"`
	EFFaultP50Ms    float64 `json:"ef_fault_p50_ms"`
	EFFaultP95Ms    float64 `json:"ef_fault_p95_ms"`
	EFFaultP99Ms    float64 `json:"ef_fault_p99_ms"`
	BEBaselineP99Ms float64 `json:"be_baseline_p99_ms"`
	BEFaultN        int     `json:"be_fault_n"`
	BEFaultP50Ms    float64 `json:"be_fault_p50_ms"`
	BEFaultP95Ms    float64 `json:"be_fault_p95_ms"`
	BEFaultP99Ms    float64 `json:"be_fault_p99_ms"`

	// WarmMs and FaultMs are the wall-clock spans of the two phases.
	WarmMs  float64 `json:"warm_ms"`
	FaultMs float64 `json:"fault_ms"`

	// ServiceGapMs is the longest gap between consecutive BE successes
	// across the whole run — the service-level recovery bound: killing
	// the BE primary must not open a hole wider than the documented
	// failover budget.
	ServiceGapMs float64 `json:"service_gap_ms"`
	// RedetectMs is how long after the primary's restart the health
	// prober took to mark it up again (-1 if it never did).
	RedetectMs float64 `json:"redetect_ms"`

	FailoverP50Ms     float64 `json:"failover_p50_ms"`
	FailoverP95Ms     float64 `json:"failover_p95_ms"`
	FailoverP99Ms     float64 `json:"failover_p99_ms"`
	Failovers         int     `json:"failovers"`
	RetryBudgetSpent  int64   `json:"retry_budget_spent"`
	RetryBudgetDenied int64   `json:"retry_budget_denied"`

	WallMs float64 `json:"wall_ms"`
}

// soakOutcome is one logical request's fate.
type soakOutcome struct {
	ef      bool
	warm    bool
	ok      bool
	class   string
	startMs float64
	endMs   float64
}

// RunSoak drives the canonical chaos topology — servers A and B, a
// chaos proxy fronting A, a best-effort group preferring the proxied A
// and an expedited group preferring the clean B — through a warm
// baseline phase and a fault phase (latency torture plus a kill/restart
// of the BE primary), returning measurements for the four robustness
// invariants: at-most-once execution, no silent losses, bounded
// failover recovery, and EF latency isolation while BE is tortured.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 10000
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	if cfg.EFEvery <= 0 {
		cfg.EFEvery = 3
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 750 * time.Millisecond
	}
	if cfg.WarmFraction <= 0 || cfg.WarmFraction >= 1 {
		cfg.WarmFraction = 0.25
	}
	if cfg.TortureLatency <= 0 {
		cfg.TortureLatency = 25 * time.Millisecond
	}
	if cfg.KillFor <= 0 {
		cfg.KillFor = 400 * time.Millisecond
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Servants on both replicas count executions per logical request id
	// — the ground truth the at-most-once invariant is checked against.
	var execMu sync.Mutex
	execCounts := make(map[string]int)
	handler := wire.HandlerFunc(func(req *wire.Request) ([]byte, error) {
		execMu.Lock()
		execCounts[string(req.Body)]++
		execMu.Unlock()
		return req.Body, nil
	})

	newServer := func(name string) (*wire.Server, string, error) {
		srv, err := wire.NewServer(wire.ServerConfig{Name: "wire.server." + name})
		if err != nil {
			return nil, "", err
		}
		srv.Register("app/soak", handler)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, "", err
		}
		return srv, addr.String(), nil
	}
	srvA, addrA, err := newServer("a")
	if err != nil {
		return nil, err
	}
	defer srvA.Shutdown(2 * time.Second)
	srvB, addrB, err := newServer("b")
	if err != nil {
		return nil, err
	}
	defer srvB.Shutdown(2 * time.Second)

	proxy, err := New(Config{
		Target: addrA,
		Seed:   cfg.Seed,
		Bus:    cfg.Bus,
		Tracer: cfg.Tracer,
		Name:   "chaos.proxyA",
	})
	if err != nil {
		return nil, err
	}
	if err := proxy.Start(); err != nil {
		return nil, err
	}
	defer proxy.Close()

	newGroup := func(name string, endpoints []string, seed int64) (*wire.GroupClient, error) {
		return wire.NewGroupClient(wire.GroupConfig{
			Endpoints:      endpoints,
			RequestTimeout: cfg.RequestTimeout,
			DialTimeout:    250 * time.Millisecond,
			ProbeInterval:  50 * time.Millisecond,
			ProbeTimeout:   200 * time.Millisecond,
			Bus:            cfg.Bus,
			Tracer:         cfg.Tracer,
			Name:           name,
			Seed:           seed,
		})
	}
	// BE prefers the tortured path; EF prefers the clean replica. Both
	// can reach both, so every failover direction is exercised.
	beGroup, err := newGroup("wire.group.be", []string{proxy.Addr(), addrB}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer beGroup.Close()
	efGroup, err := newGroup("wire.group.ef", []string{addrB, proxy.Addr()}, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	defer efGroup.Close()

	base := time.Now()
	sinceMs := func() float64 { return float64(time.Since(base)) / float64(time.Millisecond) }
	outcomes := make([]soakOutcome, cfg.Requests)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	issue := func(i int, warm bool) {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			ef := i%cfg.EFEvery == 0
			g, prio := beGroup, int16(0)
			if ef {
				g, prio = efGroup, wire.EFPriority
			}
			// A slice of the load is declared idempotent (safe to
			// re-execute), so ambiguous failures exercise cross-endpoint
			// failover too; the rest is non-idempotent and held to the
			// strict at-most-once invariant. Idempotent ids get a
			// distinct prefix because re-execution is legal for them.
			idem := ef || i%5 == 1
			prefix := "once"
			if idem {
				prefix = "many"
			}
			body := []byte(fmt.Sprintf("%s-%d", prefix, i))
			startMs := sinceMs()
			_, err := g.Invoke("app/soak", "soak", body, wire.CallOptions{Priority: prio, Idempotent: idem})
			outcomes[i] = soakOutcome{
				ef: ef, warm: warm, ok: err == nil,
				class: classify(err), startMs: startMs, endMs: sinceMs(),
			}
		}()
	}

	warmN := int(float64(cfg.Requests) * cfg.WarmFraction)
	logf("soak: warm phase, %d requests", warmN)
	for i := 0; i < warmN; i++ {
		issue(i, true)
	}
	wg.Wait()
	warmEndMs := sinceMs()

	// Fault phase: latency torture on the BE primary for the whole
	// phase, with a kill/restart window once load is flowing again.
	logf("soak: fault phase, %d requests, torture=%v kill=%v",
		cfg.Requests-warmN, cfg.TortureLatency, cfg.KillFor)
	proxy.Inject(Fault{Kind: FaultLatency, Latency: cfg.TortureLatency, Duration: time.Hour})
	var restoreAtMs float64
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		time.Sleep(cfg.KillFor) // let faulted load flow before the kill
		proxy.Kill()
		logf("soak: killed BE primary at %.0fms", sinceMs())
		time.Sleep(cfg.KillFor)
		if err := proxy.Restart(); err != nil {
			logf("soak: restart failed: %v", err)
			restoreAtMs = -1
			return
		}
		restoreAtMs = sinceMs()
		logf("soak: restarted BE primary at %.0fms", restoreAtMs)
	}()
	for i := warmN; i < cfg.Requests; i++ {
		issue(i, false)
	}
	wg.Wait()
	<-killDone
	faultEndMs := sinceMs()

	// Redetection: the BE group's prober must mark the restored primary
	// healthy again within a few probe periods.
	redetect := -1.0
	if restoreAtMs >= 0 {
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if beGroup.Healthy(0) {
				redetect = sinceMs() - restoreAtMs
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	rep := &SoakReport{
		Seed:       cfg.Seed,
		Requests:   cfg.Requests,
		Outcomes:   make(map[string]int),
		RedetectMs: redetect,
		WarmMs:     warmEndMs,
		FaultMs:    faultEndMs - warmEndMs,
		WallMs:     sinceMs(),
	}
	var efWarm, efFault, beWarm, beFault []float64
	var beOkEnds []float64
	for i := range outcomes {
		o := &outcomes[i]
		if o.endMs == 0 && o.startMs == 0 && o.class == "" {
			rep.Lost++
			continue
		}
		rep.Outcomes[o.class]++
		if o.class == "unclassified" {
			rep.Unclassified++
		}
		dur := o.endMs - o.startMs
		switch {
		case o.ef && o.warm:
			efWarm = append(efWarm, dur)
		case o.ef:
			efFault = append(efFault, dur)
		case o.warm:
			beWarm = append(beWarm, dur)
		default:
			beFault = append(beFault, dur)
		}
		if !o.ef && o.ok {
			beOkEnds = append(beOkEnds, o.endMs)
		}
	}
	for id, n := range execCounts {
		if n > 1 && strings.HasPrefix(id, "once-") {
			rep.Duplicates++
		}
	}
	efW, efF := metrics.Summarize(efWarm), metrics.Summarize(efFault)
	beW, beF := metrics.Summarize(beWarm), metrics.Summarize(beFault)
	rep.EFBaselineN, rep.EFFaultN, rep.BEFaultN = efW.N, efF.N, beF.N
	rep.EFBaselineP50Ms, rep.EFBaselineP95Ms, rep.EFBaselineP99Ms = efW.P50, efW.P95, efW.P99
	rep.EFFaultP50Ms, rep.EFFaultP95Ms, rep.EFFaultP99Ms = efF.P50, efF.P95, efF.P99
	rep.BEBaselineP99Ms = beW.P99
	rep.BEFaultP50Ms, rep.BEFaultP95Ms, rep.BEFaultP99Ms = beF.P50, beF.P95, beF.P99

	sort.Float64s(beOkEnds)
	for i := 1; i < len(beOkEnds); i++ {
		if gap := beOkEnds[i] - beOkEnds[i-1]; gap > rep.ServiceGapMs {
			rep.ServiceGapMs = gap
		}
	}

	fo := beGroup.Registry().Histogram("wire.group.failover_ms").Summary()
	rep.FailoverP50Ms, rep.FailoverP95Ms, rep.FailoverP99Ms = fo.P50, fo.P95, fo.P99
	rep.Failovers = fo.N
	rep.RetryBudgetSpent = beGroup.Budget().Spent() + efGroup.Budget().Spent()
	rep.RetryBudgetDenied = beGroup.Budget().Denied() + efGroup.Budget().Denied()
	logf("soak: done in %.0fms: %v, dup=%d lost=%d gap=%.0fms",
		rep.WallMs, rep.Outcomes, rep.Duplicates, rep.Lost, rep.ServiceGapMs)
	return rep, nil
}

// Render prints the report as the qosbench summary block.
func (r *SoakReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak (seed %d): %d logical requests in %.0fms\n", r.Seed, r.Requests, r.WallMs)
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("  outcomes:")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, r.Outcomes[k])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  invariants: duplicates=%d lost=%d unclassified=%d\n", r.Duplicates, r.Lost, r.Unclassified)
	fmt.Fprintf(&b, "  EF p50/p99 ms: baseline %.2f/%.2f, under BE torture %.2f/%.2f\n",
		r.EFBaselineP50Ms, r.EFBaselineP99Ms, r.EFFaultP50Ms, r.EFFaultP99Ms)
	fmt.Fprintf(&b, "  BE p99 ms: baseline %.2f, under torture %.2f\n", r.BEBaselineP99Ms, r.BEFaultP99Ms)
	fmt.Fprintf(&b, "  failovers: %d (p50 %.1fms, p99 %.1fms); BE success gap max %.0fms; primary re-detected %.0fms after restart\n",
		r.Failovers, r.FailoverP50Ms, r.FailoverP99Ms, r.ServiceGapMs, r.RedetectMs)
	fmt.Fprintf(&b, "  retry budget: spent %d, denied %d\n", r.RetryBudgetSpent, r.RetryBudgetDenied)
	return b.String()
}

// Violations returns the hard-invariant breaches in the report (empty
// when the run upheld at-most-once and no-silence).
func (r *SoakReport) Violations() []string {
	var v []string
	if r.Duplicates > 0 {
		v = append(v, fmt.Sprintf("%d duplicated executions (at-most-once broken)", r.Duplicates))
	}
	if r.Lost > 0 {
		v = append(v, fmt.Sprintf("%d requests lost in silence", r.Lost))
	}
	if r.Unclassified > 0 {
		v = append(v, fmt.Sprintf("%d completions outside the error taxonomy", r.Unclassified))
	}
	return v
}

// classify maps an invocation error onto the wire taxonomy; anything
// outside it is "unclassified" and trips the no-silence invariant.
func classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, wire.ErrDeadlineExpired):
		return "timeout"
	case errors.Is(err, wire.ErrOverload):
		return "overload"
	case errors.Is(err, wire.ErrTransient):
		return "transient"
	case errors.Is(err, wire.ErrCircuitOpen):
		return "circuit_open"
	case errors.Is(err, wire.ErrDial):
		return "dial"
	case errors.Is(err, wire.ErrUnavailable):
		return "unavailable"
	case errors.Is(err, wire.ErrShutdown):
		return "shutdown"
	case errors.Is(err, wire.ErrProtocol), errors.Is(err, wire.ErrObjectNotExist):
		return "protocol"
	default:
		return "unclassified"
	}
}
