package chaos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/wire"
)

// rig stands up server ← proxy ← client over real loopback TCP, with
// the client's breaker effectively disabled so each test observes the
// raw transport failure rather than a fast-fail.
func rig(t *testing.T, schedule []Fault) (*Proxy, *wire.Client) {
	t.Helper()
	srv, err := wire.NewServer(wire.ServerConfig{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Register("app/echo", wire.HandlerFunc(func(req *wire.Request) ([]byte, error) {
		return req.Body, nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	p, err := New(Config{Target: addr.String(), Schedule: schedule, Seed: 42})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	cli, err := wire.NewClient(wire.ClientConfig{
		Addr:           p.Addr(),
		RequestTimeout: 2 * time.Second,
		Breaker:        breaker.Config{Threshold: 1 << 20, Cooldown: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() {
		cli.Close()
		p.Close()
		srv.Shutdown(2 * time.Second)
	})
	return p, cli
}

func TestProxyPassthrough(t *testing.T) {
	_, cli := rig(t, nil)
	got, err := cli.Invoke("app/echo", "echo", []byte("ping"), wire.CallOptions{})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(got) != "ping" {
		t.Fatalf("reply = %q", got)
	}
}

func TestProxyLatencyFault(t *testing.T) {
	p, cli := rig(t, nil)
	if _, err := cli.Invoke("app/echo", "echo", []byte("warm"), wire.CallOptions{}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	p.Inject(Fault{Kind: FaultLatency, Latency: 60 * time.Millisecond, Duration: 5 * time.Second})
	start := time.Now()
	if _, err := cli.Invoke("app/echo", "echo", []byte("slow"), wire.CallOptions{}); err != nil {
		t.Fatalf("Invoke under latency: %v", err)
	}
	// Request and reply chunks each eat the added latency at least once.
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("latency fault not applied: call took %v", d)
	}
}

func TestProxyCorruptFaultSurfacesAsError(t *testing.T) {
	p, cli := rig(t, nil)
	if _, err := cli.Invoke("app/echo", "echo", []byte("warm"), wire.CallOptions{}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	p.Inject(Fault{Kind: FaultCorrupt, Prob: 1, Duration: 5 * time.Second})
	_, err := cli.Invoke("app/echo", "echo", []byte("garble-me"), wire.CallOptions{})
	// A flipped byte must surface as a classified failure — a protocol
	// error or a dead connection — never as a quietly wrong reply.
	if err == nil {
		t.Fatal("corrupted invocation returned success")
	}
	if !errors.Is(err, wire.ErrProtocol) && !errors.Is(err, wire.ErrUnavailable) &&
		!errors.Is(err, wire.ErrDeadlineExpired) {
		t.Fatalf("corrupted invocation error = %v, want protocol/unavailable/timeout class", err)
	}
}

func TestProxyBlackholeTimesOut(t *testing.T) {
	p, cli := rig(t, nil)
	if _, err := cli.Invoke("app/echo", "echo", []byte("warm"), wire.CallOptions{}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	p.Inject(Fault{Kind: FaultBlackhole, Duration: 5 * time.Second})
	_, err := cli.Invoke("app/echo", "echo", []byte("void"), wire.CallOptions{Timeout: 200 * time.Millisecond})
	if !errors.Is(err, wire.ErrDeadlineExpired) {
		t.Fatalf("blackholed invocation error = %v, want ErrDeadlineExpired", err)
	}
}

func TestProxyKillThenRestart(t *testing.T) {
	p, cli := rig(t, nil)
	if _, err := cli.Invoke("app/echo", "echo", []byte("warm"), wire.CallOptions{}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	p.Kill()
	if _, err := cli.Invoke("app/echo", "echo", []byte("dead"), wire.CallOptions{Timeout: time.Second}); err == nil {
		t.Fatal("invocation through killed proxy succeeded")
	}
	if err := p.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	// The client redials on the next call; allow a couple of attempts
	// while the listener settles.
	var err error
	for i := 0; i < 10; i++ {
		if _, err = cli.Invoke("app/echo", "echo", []byte("back"), wire.CallOptions{Timeout: time.Second}); err == nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("invocation after restart still failing: %v", err)
}

func TestProxyScheduledWindowClears(t *testing.T) {
	p, cli := rig(t, []Fault{
		{Kind: FaultLatency, At: 0, Duration: 150 * time.Millisecond, Latency: 50 * time.Millisecond},
	})
	_ = p
	time.Sleep(300 * time.Millisecond) // window over
	start := time.Now()
	if _, err := cli.Invoke("app/echo", "echo", []byte("fast-again"), wire.CallOptions{}); err != nil {
		t.Fatalf("Invoke after window: %v", err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("latency window did not clear: call took %v", d)
	}
}
