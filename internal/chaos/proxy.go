// Package chaos is the fault-injection plane for the real-socket wire
// stack: a byte-level TCP proxy that sits between a wire client and a
// wire server and tortures the connection the way real networks do —
// added latency, bandwidth throttling, fragmented writes, corrupted
// bytes, abrupt RSTs, half-open blackholes (the connection accepts but
// nothing ever answers), and full endpoint kills with later restarts.
//
// Faults run from a seeded, scripted schedule (offsets from Start), so
// a chaos run is reproducible: the same seed and schedule produce the
// same fault windows, and the soak harness (soak.go) asserts hard
// invariants — at-most-once execution, no silent losses, bounded
// failover recovery — against them. Every fault boundary is observable:
// a chaos_* record on the events bus and a layer-"chaos" span per fault
// window on the shared wall-clock tracer, so injected fault timelines
// line up with the failover and breaker activity they provoke.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// FaultKind names one fault class the proxy can inject.
type FaultKind string

const (
	// FaultLatency adds a fixed delay to every forwarded chunk.
	FaultLatency FaultKind = "latency"
	// FaultThrottle caps forwarding bandwidth (bytes/second).
	FaultThrottle FaultKind = "throttle"
	// FaultPartial fragments writes into tiny chunks with pauses —
	// the torn-frame case GIOP readers must reassemble.
	FaultPartial FaultKind = "partial"
	// FaultCorrupt flips one byte in each forwarded chunk's leading
	// GIOP-header window with probability Prob — structural corruption
	// the reader must surface as a classified failure, never misparse.
	FaultCorrupt FaultKind = "corrupt"
	// FaultRST abruptly resets every established connection at the
	// window start (Duration is ignored; it is an instant, not a state).
	FaultRST FaultKind = "rst"
	// FaultBlackhole swallows all bytes in both directions while
	// keeping connections open and accepting new ones — the half-open
	// failure a dial cannot detect, only a deadline or health probe can.
	FaultBlackhole FaultKind = "blackhole"
	// FaultKill closes the listener and every connection for the window
	// (dials are refused), then restarts the listener on the same
	// address when it ends — a process crash plus recovery.
	FaultKill FaultKind = "kill"
)

// Fault is one scheduled fault window.
type Fault struct {
	Kind FaultKind
	// At is the window start, relative to Proxy.Start.
	At time.Duration
	// Duration is the window length (ignored for FaultRST).
	Duration time.Duration

	// Latency is the per-chunk delay for FaultLatency.
	Latency time.Duration
	// Bps is the bandwidth cap for FaultThrottle (bytes/second).
	Bps int
	// Chunk is the max write size for FaultPartial (default 3 bytes).
	Chunk int
	// Prob is the per-chunk corruption probability for FaultCorrupt
	// (default 1.0: every chunk loses one byte to a flip).
	Prob float64
}

// Config configures a Proxy.
type Config struct {
	// Listen is the proxy's own address (default "127.0.0.1:0").
	Listen string
	// Target is the upstream endpoint every accepted connection is
	// piped to (required).
	Target string
	// Schedule is the scripted fault sequence, applied automatically
	// after Start. Faults may overlap; each kind's latest window wins.
	Schedule []Fault
	// Seed fixes the corruption byte/offset stream (0 = 1).
	Seed int64
	// Bus, when set, receives chaos_start / chaos_stop records.
	Bus *events.Bus
	// Tracer, when set, gets one layer-"chaos" span per fault window.
	Tracer *wire.Tracer
	// Name labels records and spans (default "chaos").
	Name string
}

// state is the merged live fault state the pumps consult per chunk.
type state struct {
	latency   time.Duration
	bps       int
	chunk     int
	corrupt   float64
	blackhole bool
}

// Proxy is the chaos TCP proxy. Start it, point a wire client at
// Addr(), and the scheduled faults play out on the wall clock.
type Proxy struct {
	cfg  Config
	name string
	base time.Time

	mu     sync.Mutex
	ln     net.Listener
	addr   string
	killed bool
	st     state
	conns  map[net.Conn]struct{}
	rnd    *rand.Rand
	timers []*time.Timer
	closed bool

	wg sync.WaitGroup
}

// New creates a proxy; Start arms it.
func New(cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("chaos: proxy needs a Target")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Name == "" {
		cfg.Name = "chaos"
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Proxy{
		cfg:   cfg,
		name:  cfg.Name,
		conns: make(map[net.Conn]struct{}),
		rnd:   rand.New(rand.NewSource(seed)),
	}, nil
}

// Start binds the listener, launches the accept loop and arms the
// schedule's timers.
func (p *Proxy) Start() error {
	ln, err := net.Listen("tcp", p.cfg.Listen)
	if err != nil {
		return fmt.Errorf("chaos: listen %s: %w", p.cfg.Listen, err)
	}
	p.mu.Lock()
	p.ln = ln
	p.addr = ln.Addr().String()
	p.base = time.Now()
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	for i := range p.cfg.Schedule {
		p.arm(p.cfg.Schedule[i])
	}
	return nil
}

// Addr returns the proxy's listen address (valid after Start).
func (p *Proxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// Close stops the schedule, the listener and every connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, t := range p.timers {
		t.Stop()
	}
	p.timers = nil
	p.closeLocked()
	p.mu.Unlock()
	p.wg.Wait()
}

// closeLocked tears down listener and conns; callers hold p.mu.
func (p *Proxy) closeLocked() {
	if p.ln != nil {
		p.ln.Close()
		p.ln = nil
	}
	for nc := range p.conns {
		abort(nc)
		delete(p.conns, nc)
	}
}

// Inject applies one fault now, for its Duration (At is ignored) —
// the manual-control path the soak harness and qoschaos REPL use.
func (p *Proxy) Inject(f Fault) {
	f.At = 0
	p.arm(f)
}

// Kill closes the listener and all connections until Restart — the
// imperative form of FaultKill with no scheduled end.
func (p *Proxy) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killLocked()
}

// Restart re-binds the listener on the same address after a kill.
func (p *Proxy) Restart() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restartLocked()
}

func (p *Proxy) killLocked() {
	if p.killed || p.closed {
		return
	}
	p.killed = true
	p.closeLocked()
}

func (p *Proxy) restartLocked() error {
	if !p.killed || p.closed {
		return nil
	}
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return fmt.Errorf("chaos: restart %s: %w", p.addr, err)
	}
	p.killed = false
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return nil
}

// arm schedules fault f's start and end. A fault with At <= 0 begins
// synchronously, so Inject takes effect before arm returns.
func (p *Proxy) arm(f Fault) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	if f.Kind != FaultRST && f.Duration > 0 {
		p.timers = append(p.timers, time.AfterFunc(f.At+f.Duration, func() { p.end(f) }))
	}
	if f.At > 0 {
		p.timers = append(p.timers, time.AfterFunc(f.At, func() { p.begin(f) }))
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.begin(f)
}

// begin applies fault f and records the window start.
func (p *Proxy) begin(f Fault) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	switch f.Kind {
	case FaultLatency:
		p.st.latency = f.Latency
	case FaultThrottle:
		p.st.bps = f.Bps
	case FaultPartial:
		p.st.chunk = f.Chunk
		if p.st.chunk <= 0 {
			p.st.chunk = 3
		}
	case FaultCorrupt:
		p.st.corrupt = f.Prob
		if p.st.corrupt <= 0 {
			p.st.corrupt = 1
		}
	case FaultBlackhole:
		p.st.blackhole = true
	case FaultRST:
		for nc := range p.conns {
			abort(nc)
			delete(p.conns, nc)
		}
	case FaultKill:
		p.killLocked()
	}
	p.mu.Unlock()
	p.record("chaos_start", f)
}

// end clears fault f's contribution and records the window end.
func (p *Proxy) end(f Fault) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	switch f.Kind {
	case FaultLatency:
		p.st.latency = 0
	case FaultThrottle:
		p.st.bps = 0
	case FaultPartial:
		p.st.chunk = 0
	case FaultCorrupt:
		p.st.corrupt = 0
	case FaultBlackhole:
		p.st.blackhole = false
	case FaultKill:
		if err := p.restartLocked(); err != nil {
			p.mu.Unlock()
			p.record("chaos_restart_failed", f)
			return
		}
	}
	p.mu.Unlock()
	p.record("chaos_stop", f)
}

// record publishes one fault-boundary record and, for window starts, a
// closed span covering nothing but marking the instant — the span per
// *window* is emitted at chaos_stop with the full extent.
func (p *Proxy) record(event string, f Fault) {
	if tr := p.cfg.Tracer; tr != nil {
		ctx := tr.StartRootLayer(trace.LayerChaos, event,
			trace.String("fault", string(f.Kind)),
			trace.Dur("window", sim.Time(f.Duration)))
		tr.Finish(ctx)
	}
	if p.cfg.Bus != nil {
		p.cfg.Bus.PublishAt(p.now(), events.KindChaos, p.name,
			events.F("event", event),
			events.F("fault", string(f.Kind)),
			events.F("window", f.Duration.String()),
		)
	}
}

func (p *Proxy) now() sim.Time {
	if tr := p.cfg.Tracer; tr != nil {
		return tr.Elapsed()
	}
	return sim.Time(time.Since(p.base))
}

// acceptLoop pipes each accepted connection to the target through the
// fault state.
func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.cfg.Target)
		if err != nil {
			nc.Close()
			continue
		}
		p.mu.Lock()
		if p.closed || p.killed {
			p.mu.Unlock()
			nc.Close()
			up.Close()
			continue
		}
		p.conns[nc] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(nc, up)
		go p.pump(up, nc)
	}
}

// pump forwards src→dst chunk by chunk, consulting the live fault
// state before each delivery.
func (p *Proxy) pump(src, dst net.Conn) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.mu.Lock()
		delete(p.conns, src)
		delete(p.conns, dst)
		p.mu.Unlock()
	}()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.deliver(dst, buf[:n]) {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// deliver applies the current fault state to one chunk and writes it.
func (p *Proxy) deliver(dst net.Conn, b []byte) bool {
	p.mu.Lock()
	st := p.st
	if st.corrupt > 0 && p.rnd.Float64() < st.corrupt {
		// Flip one seeded-random byte in a copy (the shared read buffer
		// must not keep the flip across iterations), confined to the
		// chunk's leading GIOP-header-sized window: structural corruption
		// the peer is guaranteed to detect — magic, version, flags or
		// length — rather than a payload flip GIOP cannot checksum.
		c := make([]byte, len(b))
		copy(c, b)
		window := len(c)
		if window > 12 {
			window = 12
		}
		c[p.rnd.Intn(window)] ^= 0xFF
		b = c
	}
	p.mu.Unlock()

	if st.blackhole {
		// Swallow silently; the connection stays half-open.
		return true
	}
	if st.latency > 0 {
		time.Sleep(st.latency)
	}
	if st.bps > 0 {
		time.Sleep(time.Duration(float64(len(b)) / float64(st.bps) * float64(time.Second)))
	}
	if st.chunk > 0 {
		for len(b) > 0 {
			n := st.chunk
			if n > len(b) {
				n = len(b)
			}
			if _, err := dst.Write(b[:n]); err != nil {
				return false
			}
			b = b[n:]
			time.Sleep(time.Millisecond)
		}
		return true
	}
	_, err := dst.Write(b)
	return err == nil
}

// abort closes nc as abruptly as the transport allows: for TCP,
// linger 0 turns the close into an RST instead of an orderly FIN.
func abort(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	nc.Close()
}
