// Package video models MPEG-1 video streams at the granularity the
// paper's experiments need: a GOP (group of pictures) structure with
// I/P/B frame types and sizes derived from the stream bitrate, plus the
// QuO-style frame filters that thin a stream to the rates the paper's
// adaptation used (30 fps full rate, 10 fps = I+P frames only, 2 fps =
// I frames only).
package video

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// FrameType classifies an MPEG frame.
type FrameType int

// MPEG frame types.
const (
	// FrameI is an intra-coded (full content) frame.
	FrameI FrameType = iota + 1
	// FrameP is a forward-predicted frame.
	FrameP
	// FrameB is a bidirectionally predicted frame.
	FrameB
)

func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	default:
		return fmt.Sprintf("FrameType(%d)", int(t))
	}
}

// Frame is one video frame.
type Frame struct {
	// Seq is the frame number in the stream, from 0.
	Seq int64
	// Type is the MPEG frame type.
	Type FrameType
	// Size is the encoded size in bytes.
	Size int
	// PTS is the frame's presentation timestamp: Seq / FPS.
	PTS time.Duration
}

// StreamConfig describes an MPEG stream.
type StreamConfig struct {
	// FPS is the frame rate. Defaults to 30, the paper's full-motion
	// rate.
	FPS int
	// GOPSize is the frames per group of pictures. Defaults to 15,
	// giving 2 I-frames per second at 30 fps as the paper states.
	GOPSize int
	// PFrames is the number of P frames per GOP. Defaults to 4, so that
	// I+P frames arrive at 10 fps — the paper's intermediate filter
	// rate.
	PFrames int
	// BitrateBps is the stream bitrate in bits per second. Defaults to
	// 1.2 Mbps, the paper's MPEG-1 rate at 30 fps.
	BitrateBps float64
	// SizeRatioI and SizeRatioP scale I and P frame sizes relative to a
	// B frame. Defaults 5 and 3 (typical MPEG-1 ratios).
	SizeRatioI, SizeRatioP int
}

// withDefaults returns cfg with zero fields filled in.
func (cfg StreamConfig) withDefaults() StreamConfig {
	if cfg.FPS == 0 {
		cfg.FPS = 30
	}
	if cfg.GOPSize == 0 {
		cfg.GOPSize = 15
	}
	if cfg.PFrames == 0 {
		cfg.PFrames = 4
	}
	if cfg.BitrateBps == 0 {
		cfg.BitrateBps = 1.2e6
	}
	if cfg.SizeRatioI == 0 {
		cfg.SizeRatioI = 5
	}
	if cfg.SizeRatioP == 0 {
		cfg.SizeRatioP = 3
	}
	return cfg
}

// FrameInterval returns the time between frames.
func (cfg StreamConfig) FrameInterval() time.Duration {
	c := cfg.withDefaults()
	return time.Second / time.Duration(c.FPS)
}

// Generator produces the deterministic frame sequence of a stream.
type Generator struct {
	cfg   StreamConfig
	seq   int64
	sizeI int
	sizeP int
	sizeB int
}

// NewGenerator creates a generator for cfg.
func NewGenerator(cfg StreamConfig) *Generator {
	c := cfg.withDefaults()
	// Bytes per GOP = bitrate * gop duration / 8. Distribute over
	// 1 I + PFrames P + rest B in the configured ratios.
	gopSeconds := float64(c.GOPSize) / float64(c.FPS)
	gopBytes := c.BitrateBps * gopSeconds / 8
	bFrames := c.GOPSize - 1 - c.PFrames
	if bFrames < 0 {
		panic(fmt.Sprintf("video: GOP %d too small for %d P frames", c.GOPSize, c.PFrames))
	}
	units := float64(c.SizeRatioI + c.PFrames*c.SizeRatioP + bFrames)
	unit := gopBytes / units
	return &Generator{
		cfg:   c,
		sizeI: int(unit * float64(c.SizeRatioI)),
		sizeP: int(unit * float64(c.SizeRatioP)),
		sizeB: int(unit),
	}
}

// Config returns the generator's (defaulted) configuration.
func (g *Generator) Config() StreamConfig { return g.cfg }

// FrameSizes returns the I, P, and B frame sizes in bytes.
func (g *Generator) FrameSizes() (i, p, b int) { return g.sizeI, g.sizeP, g.sizeB }

// Next returns the next frame in the stream.
func (g *Generator) Next() Frame {
	seq := g.seq
	g.seq++
	pos := int(seq % int64(g.cfg.GOPSize))
	f := Frame{
		Seq: seq,
		PTS: time.Duration(seq) * time.Second / time.Duration(g.cfg.FPS),
	}
	switch {
	case pos == 0:
		f.Type = FrameI
		f.Size = g.sizeI
	case g.isPSlot(pos):
		f.Type = FrameP
		f.Size = g.sizeP
	default:
		f.Type = FrameB
		f.Size = g.sizeB
	}
	return f
}

// isPSlot spreads the P frames evenly through the GOP after the I frame.
func (g *Generator) isPSlot(pos int) bool {
	if g.cfg.PFrames == 0 {
		return false
	}
	span := g.cfg.GOPSize - 1
	stride := span / g.cfg.PFrames
	if stride == 0 {
		return true
	}
	return pos%stride == 0 && pos/stride <= g.cfg.PFrames
}

// FilterLevel is a QuO frame-filtering level.
type FilterLevel int

// Filter levels, from no filtering to I-frames only.
const (
	// FilterNone passes every frame (full rate).
	FilterNone FilterLevel = iota
	// FilterIP passes I and P frames (10 fps with default config).
	FilterIP
	// FilterIOnly passes only I frames (2 fps with default config).
	FilterIOnly
)

func (l FilterLevel) String() string {
	switch l {
	case FilterNone:
		return "none"
	case FilterIP:
		return "I+P"
	case FilterIOnly:
		return "I-only"
	default:
		return fmt.Sprintf("FilterLevel(%d)", int(l))
	}
}

// Admits reports whether a frame of type t passes the filter.
func (l FilterLevel) Admits(t FrameType) bool {
	switch l {
	case FilterNone:
		return true
	case FilterIP:
		return t == FrameI || t == FrameP
	case FilterIOnly:
		return t == FrameI
	default:
		return true
	}
}

// FPS returns the frame rate the filter level passes for cfg.
func (l FilterLevel) FPS(cfg StreamConfig) float64 {
	c := cfg.withDefaults()
	gopsPerSec := float64(c.FPS) / float64(c.GOPSize)
	switch l {
	case FilterIP:
		return gopsPerSec * float64(1+c.PFrames)
	case FilterIOnly:
		return gopsPerSec
	default:
		return float64(c.FPS)
	}
}

// BitrateBps returns the approximate bitrate the filter level passes.
func (l FilterLevel) BitrateBps(cfg StreamConfig) float64 {
	g := NewGenerator(cfg)
	c := g.cfg
	gopsPerSec := float64(c.FPS) / float64(c.GOPSize)
	switch l {
	case FilterIP:
		return gopsPerSec * float64(g.sizeI+c.PFrames*g.sizeP) * 8
	case FilterIOnly:
		return gopsPerSec * float64(g.sizeI) * 8
	default:
		return c.BitrateBps
	}
}

// DeliveryStats accumulates per-type and per-second frame delivery
// accounting, the raw material for the paper's Figure 7 and Table 1.
type DeliveryStats struct {
	SentTotal     int64
	ReceivedTotal int64
	SentByType    map[FrameType]int64
	RecvByType    map[FrameType]int64
	sentPerSec    map[int]int64
	recvPerSec    map[int]int64
}

// NewDeliveryStats returns empty statistics.
func NewDeliveryStats() *DeliveryStats {
	return &DeliveryStats{
		SentByType: make(map[FrameType]int64),
		RecvByType: make(map[FrameType]int64),
		sentPerSec: make(map[int]int64),
		recvPerSec: make(map[int]int64),
	}
}

// RecordSent notes a frame entering the network at time t.
func (s *DeliveryStats) RecordSent(f Frame, t sim.Time) {
	s.SentTotal++
	s.SentByType[f.Type]++
	s.sentPerSec[int(t/time.Second)]++
}

// RecordReceived notes a frame delivered at time t.
func (s *DeliveryStats) RecordReceived(f Frame, t sim.Time) {
	s.ReceivedTotal++
	s.RecvByType[f.Type]++
	s.recvPerSec[int(t/time.Second)]++
}

// DeliveredFraction returns received/sent (1 with no traffic).
func (s *DeliveryStats) DeliveredFraction() float64 {
	if s.SentTotal == 0 {
		return 1
	}
	return float64(s.ReceivedTotal) / float64(s.SentTotal)
}

// PerSecond returns (sent, received) counts for each whole second in
// [0, horizon).
func (s *DeliveryStats) PerSecond(horizon int) (sent, recv []int64) {
	sent = make([]int64, horizon)
	recv = make([]int64, horizon)
	for sec, n := range s.sentPerSec {
		if sec >= 0 && sec < horizon {
			sent[sec] = n
		}
	}
	for sec, n := range s.recvPerSec {
		if sec >= 0 && sec < horizon {
			recv[sec] = n
		}
	}
	return sent, recv
}
