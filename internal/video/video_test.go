package video

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultGOPStructure(t *testing.T) {
	g := NewGenerator(StreamConfig{})
	counts := map[FrameType]int{}
	for i := 0; i < 15; i++ {
		counts[g.Next().Type]++
	}
	if counts[FrameI] != 1 || counts[FrameP] != 4 || counts[FrameB] != 10 {
		t.Fatalf("GOP composition = %v, want 1 I / 4 P / 10 B", counts)
	}
}

func TestIFrameRateIsTwoPerSecond(t *testing.T) {
	g := NewGenerator(StreamConfig{})
	iFrames := 0
	for i := 0; i < 30; i++ { // one second at 30 fps
		if g.Next().Type == FrameI {
			iFrames++
		}
	}
	if iFrames != 2 {
		t.Fatalf("I frames per second = %d, want 2 (paper: MPEG-1 I-frames at 2 fps)", iFrames)
	}
}

func TestBitrateMatchesConfig(t *testing.T) {
	cfg := StreamConfig{BitrateBps: 1.2e6}
	g := NewGenerator(cfg)
	total := 0
	const frames = 300 // 10 seconds
	for i := 0; i < frames; i++ {
		total += g.Next().Size
	}
	gotBps := float64(total) * 8 / 10
	if gotBps < 1.1e6 || gotBps > 1.25e6 {
		t.Fatalf("generated bitrate = %.0f bps, want ~1.2e6", gotBps)
	}
}

func TestFrameSizeOrdering(t *testing.T) {
	g := NewGenerator(StreamConfig{})
	i, p, b := g.FrameSizes()
	if !(i > p && p > b && b > 0) {
		t.Fatalf("frame sizes I=%d P=%d B=%d, want I > P > B > 0", i, p, b)
	}
}

func TestPTSSpacing(t *testing.T) {
	g := NewGenerator(StreamConfig{})
	prev := g.Next()
	for i := 0; i < 60; i++ {
		f := g.Next()
		gap := f.PTS - prev.PTS
		// Integer nanosecond arithmetic makes gaps alternate around
		// 1s/30; a 1ns wobble is expected.
		if gap < time.Second/30-time.Nanosecond || gap > time.Second/30+time.Nanosecond {
			t.Fatalf("PTS gap = %v at seq %d", gap, f.Seq)
		}
		prev = f
	}
}

func TestFilterAdmits(t *testing.T) {
	cases := []struct {
		l    FilterLevel
		t    FrameType
		want bool
	}{
		{FilterNone, FrameI, true}, {FilterNone, FrameP, true}, {FilterNone, FrameB, true},
		{FilterIP, FrameI, true}, {FilterIP, FrameP, true}, {FilterIP, FrameB, false},
		{FilterIOnly, FrameI, true}, {FilterIOnly, FrameP, false}, {FilterIOnly, FrameB, false},
	}
	for _, c := range cases {
		if got := c.l.Admits(c.t); got != c.want {
			t.Errorf("%v.Admits(%v) = %v, want %v", c.l, c.t, got, c.want)
		}
	}
}

func TestFilterRates(t *testing.T) {
	cfg := StreamConfig{}
	if fps := FilterNone.FPS(cfg); fps != 30 {
		t.Fatalf("FilterNone fps = %v", fps)
	}
	if fps := FilterIP.FPS(cfg); fps != 10 {
		t.Fatalf("FilterIP fps = %v, want 10 (paper's intermediate rate)", fps)
	}
	if fps := FilterIOnly.FPS(cfg); fps != 2 {
		t.Fatalf("FilterIOnly fps = %v, want 2 (paper's minimum rate)", fps)
	}
}

func TestFilterBitrates(t *testing.T) {
	cfg := StreamConfig{}
	full := FilterNone.BitrateBps(cfg)
	ip := FilterIP.BitrateBps(cfg)
	iOnly := FilterIOnly.BitrateBps(cfg)
	if !(full > ip && ip > iOnly && iOnly > 0) {
		t.Fatalf("bitrates %v > %v > %v violated", full, ip, iOnly)
	}
	// I-only should be well under the paper's 670 Kbps partial
	// reservation so that filtering + partial reservation succeeds.
	if iOnly > 670e3 {
		t.Fatalf("I-only bitrate %.0f exceeds the partial reservation", iOnly)
	}
}

func TestDeliveryStats(t *testing.T) {
	s := NewDeliveryStats()
	g := NewGenerator(StreamConfig{})
	for i := 0; i < 30; i++ {
		f := g.Next()
		at := time.Duration(i) * 33 * time.Millisecond
		s.RecordSent(f, at)
		if f.Type == FrameI {
			s.RecordReceived(f, at+10*time.Millisecond)
		}
	}
	if s.SentTotal != 30 || s.ReceivedTotal != 2 {
		t.Fatalf("sent=%d recv=%d", s.SentTotal, s.ReceivedTotal)
	}
	frac := s.DeliveredFraction()
	if frac < 0.06 || frac > 0.07 {
		t.Fatalf("delivered fraction = %v", frac)
	}
	sent, recv := s.PerSecond(2)
	if sent[0] != 30 || recv[0] != 2 {
		t.Fatalf("per-second: sent=%v recv=%v", sent, recv)
	}
}

// Property: over any whole number of GOPs the generator emits exactly
// the configured composition, and filter admission is consistent with
// the advertised FPS.
func TestGOPCompositionProperty(t *testing.T) {
	prop := func(gops uint8, pSel uint8) bool {
		n := int(gops%8) + 1
		cfg := StreamConfig{GOPSize: 15, PFrames: int(pSel%6) + 1}
		g := NewGenerator(cfg)
		counts := map[FrameType]int{}
		for i := 0; i < n*15; i++ {
			counts[g.Next().Type]++
		}
		wantP := n * cfg.PFrames
		wantB := n * (15 - 1 - cfg.PFrames)
		return counts[FrameI] == n && counts[FrameP] == wantP && counts[FrameB] == wantB
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
