package monitor

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/sim"
)

// This file is the live QoS introspection surface: /debug/qos renders a
// JSON snapshot of every registered component's current state (lane
// depths, breaker states, pool occupancy, retry-budget level, SLO
// burns), and /events streams bus records as NDJSON — the two endpoints
// qosmon -attach polls to render a live dashboard against a real
// process instead of a finished simulation.

// Introspector assembles the /debug/qos snapshot from named sources.
// Sources are functions returning any JSON-marshalable value; they are
// invoked per request, so the snapshot is always current.
type Introspector struct {
	mu      sync.Mutex
	names   []string
	sources map[string]func() any
}

// NewIntrospector creates an empty introspector.
func NewIntrospector() *Introspector {
	return &Introspector{sources: make(map[string]func() any)}
}

// Add registers a named snapshot source (replacing any previous source
// of the same name).
func (ix *Introspector) Add(name string, fn func() any) *Introspector {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.sources[name]; !ok {
		ix.names = append(ix.names, name)
	}
	ix.sources[name] = fn
	return ix
}

// Snapshot invokes every source and returns the combined state.
func (ix *Introspector) Snapshot() map[string]any {
	ix.mu.Lock()
	names := append([]string(nil), ix.names...)
	fns := make([]func() any, len(names))
	for i, n := range names {
		fns[i] = ix.sources[n]
	}
	ix.mu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = fns[i]()
	}
	return out
}

// Handler serves the snapshot as indented JSON.
func (ix *Introspector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ix.Snapshot())
	})
}

// RecordJSON is the wire form of one bus record on the /events stream.
type RecordJSON struct {
	Seq    uint64            `json:"seq"`
	AtMs   float64           `json:"at_ms"`
	Wall   string            `json:"wall,omitempty"` // RFC3339Nano; empty for sim records
	Kind   string            `json:"kind"`
	Source string            `json:"source"`
	Fields map[string]string `json:"fields,omitempty"`
}

// ToRecordJSON converts a bus record for NDJSON streaming.
func ToRecordJSON(r events.Record) RecordJSON {
	out := RecordJSON{
		Seq:    r.Seq,
		AtMs:   float64(r.At) / float64(sim.Time(time.Millisecond)),
		Kind:   string(r.Kind),
		Source: r.Source,
	}
	if !r.Wall.IsZero() {
		out.Wall = r.Wall.Format(time.RFC3339Nano)
	}
	if len(r.Fields) > 0 {
		out.Fields = make(map[string]string, len(r.Fields))
		for _, f := range r.Fields {
			out.Fields[f.K] = f.V
		}
	}
	return out
}

// eventStreamBuffer is the per-subscriber queue depth on /events; when
// a slow reader falls this far behind, records are dropped rather than
// ever blocking bus publishers.
const eventStreamBuffer = 256

// EventsHandler streams live bus records as NDJSON, one JSON object per
// line, flushed per record. An optional ?kinds=alert,shed query
// restricts the stream. The stream runs until the client disconnects or
// the server shuts down.
func EventsHandler(bus *events.Bus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var kinds []events.Kind
		if q := r.URL.Query().Get("kinds"); q != "" {
			for _, k := range strings.Split(q, ",") {
				if k = strings.TrimSpace(k); k != "" {
					kinds = append(kinds, events.Kind(k))
				}
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			flusher.Flush()
		}

		ch := make(chan events.Record, eventStreamBuffer)
		sub := bus.Subscribe(func(rec events.Record) {
			select {
			case ch <- rec:
			default: // slow consumer: drop, never block publishers
			}
		}, kinds...)
		defer sub.Cancel()

		enc := json.NewEncoder(w)
		for {
			select {
			case <-r.Context().Done():
				return
			case rec := <-ch:
				if err := enc.Encode(ToRecordJSON(rec)); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
		}
	})
}
