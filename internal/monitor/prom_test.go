package monitor

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/trace/telemetry"
)

// parseExposition is a miniature Prometheus text-format (v0.0.4)
// parser: it validates line syntax, metric/label name grammar, float
// sample values, family grouping (every sample adjacent to its TYPE
// line), and returns sample count per family. A parse failure fails the
// test with the offending line.
func parseExposition(t *testing.T, text string) map[string]int {
	t.Helper()
	isNameStart := func(r byte) bool {
		return r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
	}
	isName := func(s string) bool {
		if s == "" || !isNameStart(s[0]) {
			return false
		}
		for i := 1; i < len(s); i++ {
			r := s[i]
			if !isNameStart(r) && !(r >= '0' && r <= '9') {
				return false
			}
		}
		return true
	}
	families := make(map[string]int)
	var current string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || !isName(parts[2]) {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			if _, dup := families[parts[2]]; dup {
				t.Fatalf("line %d: family %q declared twice (samples not grouped)", ln+1, parts[2])
			}
			current = parts[2]
			families[current] = 0
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment/HELP
		}
		// Sample: name[{labels}] value
		rest := line
		brace := strings.IndexByte(rest, '{')
		var name string
		if brace >= 0 {
			name = rest[:brace]
			close := strings.IndexByte(rest, '}')
			if close < brace {
				t.Fatalf("line %d: unterminated label set %q", ln+1, line)
			}
			for _, pair := range strings.Split(rest[brace+1:close], ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 || !isName(pair[:eq]) || strings.Contains(pair[:eq], ":") {
					t.Fatalf("line %d: bad label %q", ln+1, pair)
				}
				v := pair[eq+1:]
				if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: unquoted label value %q", ln+1, pair)
				}
			}
			rest = rest[close+1:]
		} else {
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				t.Fatalf("line %d: no value on sample %q", ln+1, line)
			}
			name = rest[:sp]
			rest = rest[sp:]
		}
		if !isName(name) {
			t.Fatalf("line %d: bad metric name %q", ln+1, name)
		}
		rest = strings.TrimSpace(rest)
		// OpenMetrics exemplar suffix: `value # {labels} ex_value [ts]`.
		if hash := strings.Index(rest, "# {"); hash >= 0 {
			exPart := strings.TrimSpace(rest[hash+1:])
			rest = strings.TrimSpace(rest[:hash])
			cl := strings.IndexByte(exPart, '}')
			if !strings.HasPrefix(exPart, "{") || cl < 0 {
				t.Fatalf("line %d: malformed exemplar label set %q", ln+1, exPart)
			}
			fields := strings.Fields(exPart[cl+1:])
			if len(fields) < 1 || len(fields) > 2 {
				t.Fatalf("line %d: exemplar needs value [timestamp], got %q", ln+1, exPart)
			}
			for _, f := range fields {
				if _, err := strconv.ParseFloat(f, 64); err != nil {
					t.Fatalf("line %d: bad exemplar number %q: %v", ln+1, f, err)
				}
			}
		}
		if _, err := strconv.ParseFloat(rest, 64); err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, rest, err)
		}
		fam := name
		for _, suffix := range []string{"_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name {
				if _, ok := families[base]; ok {
					fam = base
				}
			}
		}
		if current == "" || fam != current {
			t.Fatalf("line %d: sample %q outside its family's TYPE block (current %q)", ln+1, name, current)
		}
		families[fam]++
	}
	return families
}

// TestRenderPromParses is the acceptance gate: a populated registry
// renders to text that parses as valid Prometheus exposition format,
// with families grouped even when lexical key order would interleave
// them.
func TestRenderPromParses(t *testing.T) {
	reg := telemetry.NewRegistry()
	// "orb.requests" and "orb.requestsb" sanitise to names whose raw keys
	// would interleave under a plain lexical sort of canonical keys.
	reg.Counter("orb.requests", telemetry.L("op", "get"), telemetry.L("prio", "0")).Add(5)
	reg.Counter("orb.requests", telemetry.L("op", "put"), telemetry.L("prio", "100")).Add(3)
	reg.Counter("orb.requestsb").Inc()
	reg.Gauge("pool.depth", telemetry.L("lane", "0")).Set(7)
	h := reg.Histogram("orb.rtt_ms", telemetry.L("op", "get"))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	// A label value needing escaping.
	reg.Counter("evil", telemetry.L("path", `a\b"c`)).Inc()

	text := RenderProm(reg)
	fams := parseExposition(t, text)

	if fams["orb_requests"] != 2 {
		t.Fatalf("orb_requests samples = %d, want 2:\n%s", fams["orb_requests"], text)
	}
	// Summary: 3 quantiles + _sum + _count.
	if fams["orb_rtt_ms"] != 5 {
		t.Fatalf("orb_rtt_ms samples = %d, want 5:\n%s", fams["orb_rtt_ms"], text)
	}
	if !strings.Contains(text, `orb_rtt_ms{op="get",quantile="0.95"} 95.05`) {
		t.Fatalf("missing p95 quantile sample:\n%s", text)
	}
	if !strings.Contains(text, `orb_rtt_ms_count{op="get"} 100`) {
		t.Fatalf("missing _count:\n%s", text)
	}
	if !strings.Contains(text, `evil{path="a\\b\"c"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", text)
	}
	// Determinism.
	if RenderProm(reg) != text {
		t.Fatal("RenderProm not deterministic")
	}
}

// TestRenderPromExemplars pins the OpenMetrics exemplar suffix: a
// histogram whose observations carry trace contexts annotates its
// _count sample with the max-value exemplar, and the result still
// parses.
func TestRenderPromExemplars(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("orb.rtt_ms", telemetry.L("op", "get"))
	h.ObserveEx(10, telemetry.Exemplar{TraceID: 3, SpanID: 4, At: 250 * time.Millisecond})
	h.ObserveEx(42, telemetry.Exemplar{TraceID: 7, SpanID: 9, At: 500 * time.Millisecond})
	h.ObserveEx(17, telemetry.Exemplar{TraceID: 11, SpanID: 12, At: 750 * time.Millisecond})

	text := RenderProm(reg)
	parseExposition(t, text)
	want := `orb_rtt_ms_count{op="get"} 3 # {trace_id="7",span_id="9"} 42 0.5`
	if !strings.Contains(text, want) {
		t.Fatalf("missing exemplar suffix %q:\n%s", want, text)
	}
	// Quantile lines stay exemplar-free (one exemplar per sample line).
	if strings.Count(text, "# {") != 1 {
		t.Fatalf("want exactly one exemplar:\n%s", text)
	}
}

func TestPromHTTPEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("up").Inc()
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	parseExposition(t, string(body))
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("body missing counter:\n%s", body)
	}

	// pprof is wired on the same mux.
	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("pprof status = %d", pp.StatusCode)
	}
}

func TestPromNameSanitisation(t *testing.T) {
	cases := map[string]string{
		"orb.rtt_ms":  "orb_rtt_ms",
		"9lives":      "_lives",
		"a-b c":       "a_b_c",
		"ok_name:sub": "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promLabelName("a:b"); got != "a_b" {
		t.Fatalf("promLabelName = %q", got)
	}
}

// BenchmarkRenderProm prices one /metrics scrape against a registry
// shaped like the wire plane's: a handful of counters and gauges plus
// full-reservoir histograms. Scrape cost lands directly on the data
// path of small hosts, so it is worth watching.
func BenchmarkRenderProm(b *testing.B) {
	reg := telemetry.NewRegistry()
	for i := 0; i < 8; i++ {
		lane := telemetry.L("lane", fmt.Sprintf("%d", i))
		reg.Counter("wire.server.dispatched", lane).Add(float64(1000 * i))
		reg.Gauge("wire.server.queue_depth", lane).Set(float64(i))
		h := reg.Histogram("wire.client.rtt_ms", lane)
		for j := 0; j < telemetry.DefaultReservoirCap; j++ {
			h.Observe(float64(j%997) / 31.0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := RenderProm(reg); len(out) == 0 {
			b.Fatal("empty exposition")
		}
	}
}
