package monitor

import (
	"strings"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/quo"
	"repro/internal/sim"
	"repro/internal/trace/telemetry"
)

// TestSamplerCounterDeltas pins the counter-to-series translation: each
// tick observes the increase since the previous tick, so StatRate
// yields a per-second rate.
func TestSamplerCounterDeltas(t *testing.T) {
	k := sim.NewKernel(1)
	reg := telemetry.NewRegistry()
	s := NewSampler(k, reg, nil, 100*time.Millisecond)
	c := reg.Counter("req")

	// 5 increments per 100ms window -> rate 50/s.
	var pump func()
	pump = func() {
		c.Inc()
		if k.Now() < sim.Time(time.Second) {
			k.After(20*time.Millisecond, pump)
		}
	}
	k.Soon(pump)
	s.Start()
	k.RunFor(time.Second)

	sr := s.Series("req")
	if sr == nil {
		t.Fatal("no series for counter")
	}
	w, ok := sr.Last()
	if !ok {
		t.Fatal("no windows")
	}
	if w.N != 1 || w.Mean != 5 {
		t.Fatalf("window = %+v, want single delta observation of 5", w.Summary)
	}
	if got := w.Rate(); got != 50 {
		t.Fatalf("rate = %v, want 50/s", got)
	}
}

// TestSamplerHistogramWindows pins the TakeWindow drain: per-window
// distributions appear under "<key>.window" while the cumulative
// summary keeps every observation.
func TestSamplerHistogramWindows(t *testing.T) {
	k := sim.NewKernel(1)
	reg := telemetry.NewRegistry()
	s := NewSampler(k, reg, nil, 100*time.Millisecond)
	h := reg.Histogram("lat_ms")

	k.At(10*time.Millisecond, func() { h.Observe(10); h.Observe(20) })
	k.At(150*time.Millisecond, func() { h.Observe(100) })
	s.Start()
	k.RunFor(300 * time.Millisecond)

	sr := s.Series("lat_ms.window")
	if sr == nil || sr.Len() < 2 {
		t.Fatalf("window series missing or short: %v", sr)
	}
	w0, w1 := sr.Window(0), sr.Window(1)
	if w0.N != 2 || w0.Mean != 15 {
		t.Fatalf("first window = %+v", w0.Summary)
	}
	if w1.N != 1 || w1.Mean != 100 {
		t.Fatalf("second window = %+v", w1.Summary)
	}
	if h.Count() != 3 {
		t.Fatalf("cumulative count = %d, want 3 (TakeWindow must not consume it)", h.Count())
	}
}

// TestSampledCondDrivesContract is the closed loop end to end: an
// application histogram is sampled into a series, a SeriesCond exposes
// the window p95 to a QuO contract, and rising measured latency drives
// the contract out of its normal region — no probe ever calls Set.
func TestSampledCondDrivesContract(t *testing.T) {
	k := sim.NewKernel(7)
	reg := telemetry.NewRegistry()
	p := NewPlane(k, reg, 100*time.Millisecond)
	h := reg.Histogram("app.rtt_ms")

	cond := HistogramCond("rtt_p95_ms", p.Sampler, "app.rtt_ms", StatP95)
	cond.Default = 10
	contract := quo.NewContract("latency", 100*time.Millisecond).
		AddCondition(cond).
		AddRegion(quo.Region{Name: "degraded", When: func(v quo.Values) bool { return v["rtt_p95_ms"] > 50 }}).
		AddRegion(quo.Region{Name: "normal"})
	p.WireContract(contract)

	// Healthy traffic for 500ms, then congestion: rtt jumps to ~120ms.
	var gen func()
	gen = func() {
		if k.Now() < sim.Time(500*time.Millisecond) {
			h.Observe(12)
		} else {
			h.Observe(120)
		}
		if k.Now() < sim.Time(time.Second) {
			k.After(25*time.Millisecond, gen)
		}
	}
	k.Soon(gen)
	p.Start()
	contract.Start(k)
	k.RunFor(time.Second)

	if contract.Region() != "degraded" {
		t.Fatalf("region = %q, want degraded (sampled p95 should exceed 50)", contract.Region())
	}
	if contract.Transitions() < 2 {
		// "" -> normal at start, normal -> degraded after the jump.
		t.Fatalf("transitions = %d, want >= 2", contract.Transitions())
	}
	// The transition is on the unified timeline as a KindRegion record.
	regions := p.Timeline.Render(events.KindRegion)
	if !strings.Contains(regions, "from=normal to=degraded") {
		t.Fatalf("timeline missing region transition:\n%s", regions)
	}
}

// TestAlertRules pins the rule lifecycle: fire after For consecutive
// windows over threshold, resolve on the first window back under.
func TestAlertRules(t *testing.T) {
	k := sim.NewKernel(1)
	reg := telemetry.NewRegistry()
	bus := events.NewBus(k)
	tl := events.NewTimeline(bus, events.KindAlert)
	s := NewSampler(k, reg, bus, 100*time.Millisecond)
	s.AddRule(&Rule{
		Name: "high-latency", Series: "lat_ms.window",
		Stat: StatP95, Op: Above, Threshold: 50, For: 2,
	})
	h := reg.Histogram("lat_ms")

	// Windows: ~45 (ok), ~80, ~80 (fires at second), ~80, ~20 (resolves).
	obs := []struct {
		at sim.Time
		v  float64
	}{
		{10 * sim.Time(time.Millisecond), 45},
		{110 * sim.Time(time.Millisecond), 80},
		{210 * sim.Time(time.Millisecond), 80},
		{310 * sim.Time(time.Millisecond), 80},
		{410 * sim.Time(time.Millisecond), 20},
	}
	for _, o := range obs {
		v := o.v
		k.At(o.at, func() { h.Observe(v) })
	}
	s.Start()
	k.RunFor(600 * time.Millisecond)

	recs := tl.Records()
	if len(recs) != 2 {
		t.Fatalf("alert records = %d, want firing+resolved:\n%s", len(recs), tl.Render())
	}
	if recs[0].At != sim.Time(300*time.Millisecond) {
		t.Fatalf("fired at %v, want 300ms (For=2 windows over threshold)", recs[0].At)
	}
	assertField := func(r events.Record, key, want string) {
		t.Helper()
		for _, f := range r.Fields {
			if f.K == key {
				if f.V != want {
					t.Fatalf("%s=%q, want %q", key, f.V, want)
				}
				return
			}
		}
		t.Fatalf("record missing field %q: %v", key, r)
	}
	assertField(recs[0], "state", "firing")
	assertField(recs[1], "state", "resolved")
	assertField(recs[1], "value", "20")
}

// TestSamplerDeterminism: two identically seeded runs produce identical
// series and timelines.
func TestSamplerDeterminism(t *testing.T) {
	run := func() (string, string) {
		k := sim.NewKernel(3)
		reg := telemetry.NewRegistry()
		p := NewPlane(k, reg, 50*time.Millisecond)
		h := reg.Histogram("x")
		c := reg.Counter("n")
		var gen func()
		gen = func() {
			h.Observe(float64(10 + k.Rand().Intn(50)))
			c.Inc()
			if k.Now() < sim.Time(time.Second) {
				k.After(7*time.Millisecond, gen)
			}
		}
		k.Soon(gen)
		p.Sampler.AddRule(&Rule{Name: "busy", Series: "n", Stat: StatRate, Op: Above, Threshold: 100})
		p.Start()
		k.RunFor(time.Second)
		return p.Sampler.Series("x.window").RenderTable("x").Render(), p.Timeline.Render()
	}
	t1, tl1 := run()
	t2, tl2 := run()
	if t1 != t2 {
		t.Fatal("series tables differ across identically seeded runs")
	}
	if tl1 != tl2 {
		t.Fatal("timelines differ across identically seeded runs")
	}
}
