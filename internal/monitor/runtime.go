package monitor

import (
	rm "runtime/metrics"
	"sync"
	"time"

	"repro/internal/trace/telemetry"
)

// RuntimeCollector samples the Go runtime's own health — scheduler,
// heap, and GC — into a telemetry registry via runtime/metrics, so a
// live process's /metrics scrape and sampled series carry the process
// vitals next to the middleware's QoS instruments.
//
// Mapping:
//
//   - go.goroutines (gauge): live goroutine count
//   - go.heap_objects_bytes (gauge): bytes in live + unswept heap objects
//   - go.mem_total_bytes (gauge): all memory mapped by the runtime
//   - go.heap_alloc_bytes (counter): cumulative allocated bytes
//   - go.gc_cycles (counter): completed GC cycles
//   - go.gc_pause_ms (histogram + p50/p99 gauges): stop-the-world pauses
//   - go.sched_latency_ms (histogram + p50/p99 gauges): goroutine
//     run-queue wait
//
// The runtime exposes pause and latency distributions as cumulative
// bucket counts; Collect observes per-bucket deltas (capped per collect
// so a busy scheduler cannot flood a reservoir) at bucket midpoints,
// and additionally publishes exact whole-distribution quantile gauges
// (go.*_p50_ms / go.*_p99_ms) computed from the cumulative histogram.
//
// Collect is cheap (a single runtime/metrics read) and safe for
// concurrent use; register it on a sampler via AddCollector so every
// window carries fresh runtime state.
type RuntimeCollector struct {
	reg *telemetry.Registry

	mu      sync.Mutex
	samples []rm.Sample
	prev    map[string][]uint64 // histogram metric -> previous bucket counts
}

// histObsCap bounds histogram observations per metric per collect: the
// reservoir keeps an exact distribution for small deltas while a storm
// of sched events cannot make Collect O(events).
const histObsCap = 128

// runtimeMetricNames are the runtime/metrics keys the collector reads.
var runtimeMetricNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// NewRuntimeCollector creates a collector writing into reg.
func NewRuntimeCollector(reg *telemetry.Registry) *RuntimeCollector {
	c := &RuntimeCollector{reg: reg, prev: make(map[string][]uint64)}
	c.samples = make([]rm.Sample, len(runtimeMetricNames))
	for i, name := range runtimeMetricNames {
		c.samples[i].Name = name
	}
	return c
}

// Collect reads the runtime metrics once and updates the registry.
func (c *RuntimeCollector) Collect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	rm.Read(c.samples)
	for _, s := range c.samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			c.gaugeUint("go.goroutines", s.Value)
		case "/memory/classes/heap/objects:bytes":
			c.gaugeUint("go.heap_objects_bytes", s.Value)
		case "/memory/classes/total:bytes":
			c.gaugeUint("go.mem_total_bytes", s.Value)
		case "/gc/heap/allocs:bytes":
			c.counterUint("go.heap_alloc_bytes", s.Value)
		case "/gc/cycles/total:gc-cycles":
			c.counterUint("go.gc_cycles", s.Value)
		case "/gc/pauses:seconds":
			c.histSeconds("go.gc_pause_ms", s.Name, s.Value)
		case "/sched/latencies:seconds":
			c.histSeconds("go.sched_latency_ms", s.Name, s.Value)
		}
	}
}

func (c *RuntimeCollector) gaugeUint(name string, v rm.Value) {
	if v.Kind() != rm.KindUint64 {
		return
	}
	c.reg.Gauge(name).Set(float64(v.Uint64()))
}

// counterUint sets the cumulative counter to the runtime's own
// cumulative value (counters only grow, so Add the delta).
func (c *RuntimeCollector) counterUint(name string, v rm.Value) {
	if v.Kind() != rm.KindUint64 {
		return
	}
	ctr := c.reg.Counter(name)
	if d := float64(v.Uint64()) - ctr.Value(); d > 0 {
		ctr.Add(d)
	}
}

// histSeconds folds a cumulative runtime histogram (seconds) into a
// telemetry histogram in milliseconds: per-bucket count deltas since
// the previous collect are observed at bucket midpoints (capped), and
// exact overall p50/p99 gauges are computed from the full cumulative
// distribution.
func (c *RuntimeCollector) histSeconds(name, key string, v rm.Value) {
	if v.Kind() != rm.KindFloat64Histogram {
		return
	}
	h := v.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return
	}
	prev := c.prev[key]
	hist := c.reg.Histogram(name)
	budget := histObsCap
	for i, n := range h.Counts {
		var d uint64
		if i < len(prev) {
			if n > prev[i] {
				d = n - prev[i]
			}
		} else {
			d = n
		}
		if d == 0 || budget == 0 {
			continue
		}
		mid := bucketMid(h.Buckets, i)
		obs := int(d)
		if obs > budget {
			obs = budget
		}
		budget -= obs
		for j := 0; j < obs; j++ {
			hist.Observe(mid * 1000) // seconds -> ms
		}
	}
	// Remember the cumulative counts for the next delta.
	if cap(prev) < len(h.Counts) {
		prev = make([]uint64, len(h.Counts))
	}
	prev = prev[:len(h.Counts)]
	copy(prev, h.Counts)
	c.prev[key] = prev

	c.reg.Gauge(name + "_p50").Set(histQuantile(h, 0.50) * 1000)
	c.reg.Gauge(name + "_p99").Set(histQuantile(h, 0.99) * 1000)
}

// bucketMid returns the midpoint of bucket i for a runtime histogram
// with len(buckets) == len(counts)+1, tolerating ±Inf edge buckets.
func bucketMid(buckets []float64, i int) float64 {
	lo, hi := buckets[i], buckets[i+1]
	switch {
	case lo <= -1e308 || lo != lo: // -Inf or NaN lower edge
		return hi
	case hi >= 1e308 || hi != hi: // +Inf or NaN upper edge
		return lo
	default:
		return (lo + hi) / 2
	}
}

// histQuantile computes quantile q from a cumulative runtime histogram
// (upper bucket bound of the bucket containing the q-th event).
func histQuantile(h *rm.Float64Histogram, q float64) float64 {
	var total uint64
	for _, n := range h.Counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for i, n := range h.Counts {
		seen += n
		if n > 0 && seen > target {
			return bucketMid(h.Buckets, i)
		}
	}
	return bucketMid(h.Buckets, len(h.Counts)-1)
}

// StartRuntime registers a runtime collector on reg and polls it every
// period in a goroutine (for processes without a sampler). The returned
// stop function halts the poller synchronously.
func StartRuntime(reg *telemetry.Registry, every time.Duration) func() {
	if every <= 0 {
		every = DefaultEvery
	}
	c := NewRuntimeCollector(reg)
	c.Collect()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Collect()
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}
