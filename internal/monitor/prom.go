package monitor

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/events"
	"repro/internal/trace/telemetry"
)

// This file is the exposition endpoint: the registry rendered in the
// Prometheus text exposition format (version 0.0.4), either as a pure
// string — the form simulation tests assert on — or served over a real
// net/http mux with /metrics and /debug/pprof, for watching a live run.

// promName sanitises an instrument name into a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*, everything else mapped to '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabelName sanitises a label name: like metric names but without ':'.
func promLabelName(name string) string {
	s := promName(name)
	return strings.ReplaceAll(s, ":", "_")
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promExemplar renders an OpenMetrics exemplar suffix: the `# {labels}
// value timestamp` tail appended to a sample line, linking the metric
// to the trace/span that produced its worst observation.
func promExemplar(ex telemetry.Exemplar) string {
	return fmt.Sprintf(`# {trace_id="%d",span_id="%d"} %s %s`,
		ex.TraceID, ex.SpanID, promFloat(ex.Value), promFloat(ex.At.Seconds()))
}

// promLabels renders a label set (plus optional extra label) in
// canonical order.
func promLabels(labels []telemetry.Label, extra ...telemetry.Label) string {
	all := append(append([]telemetry.Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = promLabelName(l.K) + `="` + promEscape(l.V) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

type promSample struct {
	line string // full sample line(s) for this instrument
	sort string // label-string sort key within the family
}

type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

// RenderProm renders every instrument in reg in the Prometheus text
// exposition format: families grouped by (sanitised) metric name with
// one TYPE line each, counters and gauges as single samples, histograms
// as summaries (quantile series plus _sum and _count). Output is
// deterministic: families sorted by name, samples by label string.
func RenderProm(reg *telemetry.Registry) string {
	fams := make(map[string]*promFamily)
	add := func(rawName, typ string, mk func(name string, labels []telemetry.Label) []promSample) {
		name, labels := telemetry.ParseKey(rawName)
		pn := promName(name)
		f, ok := fams[pn]
		if !ok {
			f = &promFamily{name: pn, typ: typ}
			fams[pn] = f
		}
		f.samples = append(f.samples, mk(pn, labels)...)
	}

	for _, key := range reg.CounterKeys() {
		v := reg.CounterByKey(key).Value()
		add(key, "counter", func(name string, labels []telemetry.Label) []promSample {
			ls := promLabels(labels)
			return []promSample{{line: name + ls + " " + promFloat(v) + "\n", sort: ls}}
		})
	}
	for _, key := range reg.GaugeKeys() {
		v := reg.GaugeByKey(key).Value()
		add(key, "gauge", func(name string, labels []telemetry.Label) []promSample {
			ls := promLabels(labels)
			return []promSample{{line: name + ls + " " + promFloat(v) + "\n", sort: ls}}
		})
	}
	for _, key := range reg.HistogramKeys() {
		h := reg.HistogramByKey(key)
		sum := h.Summary()
		// A scrape is an observer: yield after each percentile
		// computation so rendering many full reservoirs never
		// monopolises a small host's only core for milliseconds at a
		// stretch — the data path runs between families instead of
		// queueing behind the whole render.
		runtime.Gosched()
		total := h.Sum()
		ex, hasEx := h.Exemplar()
		add(key, "summary", func(name string, labels []telemetry.Label) []promSample {
			var b strings.Builder
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", sum.P50}, {"0.95", sum.P95}, {"0.99", sum.P99}} {
				ls := promLabels(labels, telemetry.Label{K: "quantile", V: q.q})
				b.WriteString(name + ls + " " + promFloat(q.v) + "\n")
			}
			ls := promLabels(labels)
			b.WriteString(name + "_sum" + ls + " " + promFloat(total) + "\n")
			b.WriteString(name + "_count" + ls + " " + strconv.FormatInt(int64(sum.N), 10))
			if hasEx {
				// OpenMetrics exemplar: the worst cumulative observation tied
				// to the trace that produced it, so a scrape links straight
				// from a bad quantile to a concrete causal trace.
				b.WriteString(" " + promExemplar(ex))
			}
			b.WriteString("\n")
			return []promSample{{line: b.String(), sort: ls}}
		})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		sort.SliceStable(f.samples, func(i, j int) bool { return f.samples[i].sort < f.samples[j].sort })
		for _, s := range f.samples {
			b.WriteString(s.line)
		}
	}
	return b.String()
}

// ContentType is the exposition content type served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves RenderProm(reg) as a Prometheus scrape endpoint.
func Handler(reg *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write([]byte(RenderProm(reg)))
	})
}

// MuxOption extends the monitoring mux with live-introspection routes.
type MuxOption func(*http.ServeMux)

// WithIntrospect adds /debug/qos serving ix's JSON snapshot.
func WithIntrospect(ix *Introspector) MuxOption {
	return func(mux *http.ServeMux) { mux.Handle("/debug/qos", ix.Handler()) }
}

// WithEvents adds /events streaming bus records as NDJSON.
func WithEvents(bus *events.Bus) MuxOption {
	return func(mux *http.ServeMux) { mux.Handle("/events", EventsHandler(bus)) }
}

// NewMux builds an http.ServeMux exposing /metrics for reg plus the
// /debug/pprof handlers, registered explicitly so callers never depend
// on the global http.DefaultServeMux. Options add the live
// introspection routes (/debug/qos, /events).
func NewMux(reg *telemetry.Registry, opts ...MuxOption) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, opt := range opts {
		opt(mux)
	}
	return mux
}
