package monitor

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestSeriesRoll(t *testing.T) {
	s := NewSeries("lat", 8)
	for _, v := range []float64{10, 20, 30} {
		s.Observe(v)
	}
	w := s.Roll(0, sim.Time(time.Second))
	if w.N != 3 || w.Mean != 20 || w.Min != 10 || w.Max != 30 {
		t.Fatalf("window = %+v", w.Summary)
	}
	// Reservoir reset: the next window is independent.
	s.Observe(100)
	w2 := s.Roll(w.End, w.End+sim.Time(time.Second))
	if w2.N != 1 || w2.Mean != 100 {
		t.Fatalf("second window = %+v", w2.Summary)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSeriesRingEviction(t *testing.T) {
	s := NewSeries("x", 4)
	for i := 0; i < 10; i++ {
		s.Append(Window{Start: sim.Time(i), End: sim.Time(i + 1), Summary: metrics.Summary{N: i}})
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want ring cap 4", s.Len())
	}
	ws := s.Windows()
	for i, w := range ws {
		if w.N != 6+i {
			t.Fatalf("window %d has N=%d, want %d (oldest evicted first)", i, w.N, 6+i)
		}
	}
	last, ok := s.Last()
	if !ok || last.N != 9 {
		t.Fatalf("last = %+v ok=%v", last, ok)
	}
}

func TestSeriesLastNonEmpty(t *testing.T) {
	s := NewSeries("x", 8)
	s.Append(Window{Summary: metrics.Summary{N: 5, Mean: 42}})
	s.Append(Window{}) // quiet tick
	s.Append(Window{})
	w, ok := s.LastNonEmpty()
	if !ok || w.Mean != 42 {
		t.Fatalf("LastNonEmpty = %+v ok=%v", w, ok)
	}
}

func TestWindowRateAndStats(t *testing.T) {
	w := Window{
		Start:   0,
		End:     sim.Time(2 * time.Second),
		Summary: metrics.Summary{N: 4, Mean: 5, Min: 1, Max: 9, P50: 4, P95: 8, P99: 9},
	}
	// Sum = Mean*N = 20 over 2s -> 10/s.
	if got := w.Rate(); got != 10 {
		t.Fatalf("rate = %v", got)
	}
	cases := map[Stat]float64{
		StatMean: 5, StatMin: 1, StatMax: 9,
		StatP50: 4, StatP95: 8, StatP99: 9,
		StatCount: 4, StatRate: 10,
	}
	for st, want := range cases {
		if got := st.Of(w); got != want {
			t.Fatalf("%v = %v, want %v", st, got, want)
		}
	}
}
