package monitor

import (
	"strconv"
	"sync"

	"repro/internal/events"
	"repro/internal/pubsub"
)

// WirePubSub connects a channel's drop and lag hooks to the monitoring
// bus: every overflow/coalesce/sample decision becomes a KindDrop
// record and every lag-watermark crossing a KindSubLag record, so
// dissemination losses line up on the same timeline as sheds, breaker
// trips and SLO burns. Works for simulation and wall buses alike (the
// channel stamps its own clock into the records).
func WirePubSub(bus *events.Bus, ch *pubsub.Channel) {
	source := "pubsub/" + ch.Name()
	ch.SetDropHook(func(d pubsub.DropInfo) {
		bus.PublishAt(d.At, events.KindDrop, source,
			events.F("sub", d.Sub),
			events.F("topic", d.Topic),
			events.F("seq", strconv.FormatUint(d.Seq, 10)),
			events.F("reason", d.Reason),
			events.F("policy", d.Policy.String()),
			events.F("depth", strconv.Itoa(d.Depth)))
	})
	ch.SetLagHook(func(l pubsub.LagInfo) {
		state := "cleared"
		if l.Lagging {
			state = "lagging"
		}
		bus.PublishAt(l.At, events.KindSubLag, source,
			events.F("sub", l.Sub),
			events.F("state", state),
			events.F("depth", strconv.Itoa(l.Depth)),
			events.F("cap", strconv.Itoa(l.Cap)))
	})
}

// DegradePubSubOnBurn drives the channel's adaptive downgrade from the
// monitoring plane: while any alert rule or SLO burn pair is in the
// firing state, BE subscribers run degraded (coalesced/sampled
// delivery); when the last firing source resolves, full fan-out
// resumes. EF subscribers keep complete streams throughout. Cancel the
// returned subscription to detach.
func DegradePubSubOnBurn(bus *events.Bus, ch *pubsub.Channel) *events.BusSub {
	var mu sync.Mutex
	firing := make(map[string]bool)
	return bus.Subscribe(func(r events.Record) {
		state := ""
		for _, f := range r.Fields {
			if f.K == "state" {
				state = f.V
				break
			}
		}
		key := string(r.Kind) + "/" + r.Source
		mu.Lock()
		switch state {
		case "firing":
			firing[key] = true
		case "resolved":
			delete(firing, key)
		default:
			mu.Unlock()
			return
		}
		degraded := len(firing) > 0
		mu.Unlock()
		ch.SetDegraded(degraded)
	}, events.KindAlert, events.KindSLOBurn)
}
