package monitor

import (
	"testing"

	"repro/internal/events"
	"repro/internal/pubsub"
	"repro/internal/sim"
)

// TestWirePubSub pins the bus wiring: outbox overflows become KindDrop
// records and watermark crossings KindSubLag records, timestamped with
// the channel's clock.
func TestWirePubSub(t *testing.T) {
	var now sim.Time
	ch := pubsub.New(pubsub.ChannelConfig{Name: "mon", Now: func() sim.Time { return now }})
	bus := events.NewWallBus(nil)
	drops := events.NewTimeline(bus, events.KindDrop)
	lags := events.NewTimeline(bus, events.KindSubLag)
	WirePubSub(bus, ch)

	if _, err := ch.Subscribe(pubsub.SubscriberConfig{Name: "slow", Outbox: 4, Deliver: func(pubsub.Event) {}}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for i := 0; i < 6; i++ {
		now += sim.Time(1e6)
		if err := ch.Publish(pubsub.Event{Topic: "t"}); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}

	if drops.Len() != 2 {
		t.Fatalf("drop records = %d, want 2\n%s", drops.Len(), drops.Render())
	}
	r := drops.Records()[0]
	if r.Source != "pubsub/mon" {
		t.Errorf("drop source = %q", r.Source)
	}
	fields := map[string]string{}
	for _, f := range r.Fields {
		fields[f.K] = f.V
	}
	if fields["sub"] != "slow" || fields["reason"] != "overflow" || fields["policy"] != "drop-oldest" {
		t.Errorf("drop fields = %v", fields)
	}
	if lags.Len() != 1 {
		t.Errorf("sub_lag records = %d, want 1 (entered)", lags.Len())
	}
	ch.PumpAll()
	if lags.Len() != 2 {
		t.Errorf("sub_lag records after drain = %d, want 2 (cleared)", lags.Len())
	}
}

// TestDegradePubSubOnBurn pins the adaptive hook: any firing alert or
// SLO burn degrades BE subscribers; when the last source resolves, full
// fan-out resumes.
func TestDegradePubSubOnBurn(t *testing.T) {
	ch := pubsub.New(pubsub.ChannelConfig{Name: "adapt"})
	if _, err := ch.Subscribe(pubsub.SubscriberConfig{Name: "be", Priority: 0, Deliver: func(pubsub.Event) {}}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	bus := events.NewWallBus(nil)
	sub := DegradePubSubOnBurn(bus, ch)
	defer sub.Cancel()

	bus.Publish(events.KindAlert, "rule/ef_hot", events.F("state", "firing"))
	if !ch.Degraded() {
		t.Fatal("firing alert must degrade the channel")
	}
	bus.Publish(events.KindSLOBurn, "slo/echo", events.F("state", "firing"))
	bus.Publish(events.KindAlert, "rule/ef_hot", events.F("state", "resolved"))
	if !ch.Degraded() {
		t.Fatal("one source still firing: channel must stay degraded")
	}
	bus.Publish(events.KindSLOBurn, "slo/echo", events.F("state", "resolved"))
	if ch.Degraded() {
		t.Fatal("all sources resolved: channel must recover")
	}
	// Records without a state field (other kinds' shapes) are ignored.
	bus.Publish(events.KindAlert, "rule/odd")
	if ch.Degraded() {
		t.Fatal("stateless record must not flip degradation")
	}
}
