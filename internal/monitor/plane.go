package monitor

import (
	"strconv"
	"time"

	"repro/internal/events"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/quo"
	"repro/internal/rtcorba"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/trace/telemetry"
)

// Plane bundles the monitoring machinery for one scenario: the bus
// merging every layer's occurrences into a unified timeline, the
// sampler turning the telemetry registry into time series, and Wire*
// helpers that attach each middleware subsystem's observation hook.
// Everything runs on the simulation clock, so a seeded scenario yields
// a byte-identical dashboard on every run.
type Plane struct {
	K        *sim.Kernel
	Reg      *telemetry.Registry
	Bus      *events.Bus
	Timeline *events.Timeline
	Sampler  *Sampler
}

// NewPlane creates a monitoring plane over reg sampling every period
// (DefaultEvery if <= 0), with a bus and an all-kinds timeline.
func NewPlane(k *sim.Kernel, reg *telemetry.Registry, every time.Duration) *Plane {
	bus := events.NewBus(k)
	return &Plane{
		K:        k,
		Reg:      reg,
		Bus:      bus,
		Timeline: events.NewTimeline(bus),
		Sampler:  NewSampler(k, reg, bus, every),
	}
}

// Start begins sampling.
func (p *Plane) Start() { p.Sampler.Start() }

// Stop halts sampling.
func (p *Plane) Stop() { p.Sampler.Stop() }

// WireORB publishes the ORB's circuit-breaker transitions as
// KindBreaker records sourced "orb@<name>".
func (p *Plane) WireORB(o *orb.ORB) {
	o.SetBreakerHook(func(tr orb.BreakerTransition) {
		p.Bus.PublishAt(tr.At, events.KindBreaker, "orb@"+o.Name(),
			events.F("endpoint", tr.Addr.String()),
			events.F("from", tr.From.String()),
			events.F("to", tr.To.String()))
	})
}

// WirePool publishes a thread pool's lane sheds and refusals as
// KindShed records sourced "pool/<name>".
func (p *Plane) WirePool(name string, tp *rtcorba.ThreadPool) {
	tp.SetShedHook(func(lane rtcorba.Priority, reason string) {
		p.Bus.Publish(events.KindShed, "pool/"+name,
			events.F("lane", strconv.Itoa(int(lane))),
			events.F("reason", reason))
	})
}

// WireNetwork publishes every classified packet drop as a KindDrop
// record sourced "net".
func (p *Plane) WireNetwork(n *netsim.Network) {
	n.SetDropHook(func(pkt *netsim.Packet, reason netsim.DropReason) {
		p.Bus.Publish(events.KindDrop, "net",
			events.F("reason", reason.String()),
			events.F("dst", pkt.Dst.String()),
			events.F("flow", strconv.FormatUint(uint64(pkt.Flow), 10)))
	})
}

// WireContract publishes a QuO contract's region transitions as
// KindRegion records sourced "contract/<name>". It composes with any
// other OnTransition callbacks the scenario registers.
func (p *Plane) WireContract(c *quo.Contract) {
	c.OnTransition(func(from, to string, _ quo.Values) {
		p.Bus.Publish(events.KindRegion, "contract/"+c.Name(),
			events.F("from", from),
			events.F("to", to))
	})
}

// spanSink bridges notable span ends onto the bus: FT failover spans
// become KindFailover records, spans carrying an error attribute become
// KindSpanEnd records. Routine successful spans stay off the timeline —
// they belong in traces and series, not the event log.
type spanSink struct{ p *Plane }

// OnEnd implements trace.Sink.
func (ss spanSink) OnEnd(s *trace.Span) {
	if s.Layer == trace.LayerFT && s.Name == "failover" {
		fields := []events.Field{events.F("dur", s.Duration().String())}
		fields = append(fields, attrFields(s, "from", "to")...)
		ss.p.Bus.PublishAt(s.End, events.KindFailover, "ft", fields...)
		return
	}
	if errAttr := attrValue(s, "error"); errAttr != "" {
		ss.p.Bus.PublishAt(s.End, events.KindSpanEnd, s.Layer+"/"+s.Name,
			events.F("error", errAttr),
			events.F("dur", s.Duration().String()))
	}
}

func attrValue(s *trace.Span, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

func attrFields(s *trace.Span, keys ...string) []events.Field {
	var out []events.Field
	for _, k := range keys {
		if v := attrValue(s, k); v != "" {
			out = append(out, events.F(k, v))
		}
	}
	return out
}

// WireTracer attaches the span-end bridge to tr.
func (p *Plane) WireTracer(tr *trace.Tracer) {
	tr.AddSink(spanSink{p: p})
}
