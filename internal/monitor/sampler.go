package monitor

import (
	"strconv"
	"time"

	"repro/internal/events"
	"repro/internal/quo"
	"repro/internal/sim"
	"repro/internal/trace/telemetry"
)

// DefaultEvery is the sampling period when none is configured.
const DefaultEvery = 250 * time.Millisecond

// RuleOp is the comparison direction of an alert rule.
type RuleOp int

const (
	// Above fires when the observed statistic exceeds the threshold.
	Above RuleOp = iota + 1
	// Below fires when the observed statistic falls under the threshold.
	Below
)

func (op RuleOp) String() string {
	if op == Below {
		return "below"
	}
	return "above"
}

// Rule is a threshold alert over one series statistic. Grammar:
//
//	ALERT <name> WHEN <series>.<stat> {above|below} <threshold> FOR <n> windows
//
// The rule fires after the condition has held for For consecutive
// closed windows (empty windows break the streak) and resolves on the
// first window where it no longer holds. Firing and resolving publish
// KindAlert records on the bus.
type Rule struct {
	Name      string
	Series    string // sampler series name (canonical instrument key [+ .window suffix])
	Stat      Stat
	Op        RuleOp
	Threshold float64
	For       int // consecutive windows required; <=1 means immediate

	streak int
	firing bool
}

func (r *Rule) holds(v float64) bool {
	if r.Op == Below {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// Sampler walks a telemetry registry on a fixed virtual-time period,
// turning instruments into bounded time series:
//
//   - each counter becomes a per-window delta series (one observation
//     per tick: the increase since the previous tick),
//   - each gauge becomes a per-window level series (its value at the
//     tick),
//   - each histogram's window reservoir is drained via TakeWindow into
//     a per-window distribution series, leaving the cumulative summary
//     untouched.
//
// After appending windows it evaluates alert rules and publishes
// KindAlert transitions on the bus (when one is attached). Series are
// created lazily as instruments appear in the registry, so scenarios
// may register metrics after the sampler starts.
type Sampler struct {
	K     *sim.Kernel
	Reg   *telemetry.Registry
	Bus   *events.Bus // optional; alert + tick records
	Every time.Duration
	// WindowCap bounds retained windows per series (DefaultWindows if 0).
	WindowCap int

	series    map[string]*Series
	prevCount map[string]float64
	rules     []*Rule
	order     []string // series creation order, for deterministic dashboards
	lastTick  sim.Time
	ticks     int
	stopped   bool
	started   bool
}

// NewSampler creates a sampler over reg ticking every period (
// DefaultEvery if <= 0). The bus may be nil.
func NewSampler(k *sim.Kernel, reg *telemetry.Registry, bus *events.Bus, every time.Duration) *Sampler {
	if every <= 0 {
		every = DefaultEvery
	}
	return &Sampler{
		K:         k,
		Reg:       reg,
		Bus:       bus,
		Every:     every,
		series:    make(map[string]*Series),
		prevCount: make(map[string]float64),
	}
}

// AddRule registers an alert rule evaluated after every tick.
func (s *Sampler) AddRule(r *Rule) *Sampler {
	if r.For < 1 {
		r.For = 1
	}
	s.rules = append(s.rules, r)
	return s
}

// Start schedules the recurring sampling tick.
func (s *Sampler) Start() {
	if s.started {
		return
	}
	s.started = true
	s.lastTick = s.K.Now()
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		s.Tick()
		s.K.After(s.Every, tick)
	}
	s.K.After(s.Every, tick)
}

// Stop halts sampling after the current tick.
func (s *Sampler) Stop() { s.stopped = true }

// Ticks returns the number of completed sampling ticks.
func (s *Sampler) Ticks() int { return s.ticks }

func (s *Sampler) get(name string) *Series {
	sr, ok := s.series[name]
	if !ok {
		sr = NewSeries(name, s.WindowCap)
		s.series[name] = sr
		s.order = append(s.order, name)
	}
	return sr
}

// Series returns the series for a canonical instrument key (histograms
// additionally expose "<key>.window"), or nil if never sampled.
func (s *Sampler) Series(name string) *Series { return s.series[name] }

// SeriesNames returns all series in creation order (registry key order
// at each tick, so deterministic for a deterministic scenario).
func (s *Sampler) SeriesNames() []string { return append([]string(nil), s.order...) }

// Tick closes one sampling window: reads every instrument, appends
// window summaries, and evaluates alert rules. Exposed so tests and
// scenarios can force a final window at shutdown.
func (s *Sampler) Tick() {
	start, end := s.lastTick, s.K.Now()
	s.lastTick = end
	s.ticks++

	for _, key := range s.Reg.CounterKeys() {
		cur := s.Reg.CounterByKey(key).Value()
		delta := cur - s.prevCount[key]
		s.prevCount[key] = cur
		sr := s.get(key)
		sr.Observe(delta)
		sr.Roll(start, end)
	}
	for _, key := range s.Reg.GaugeKeys() {
		sr := s.get(key)
		sr.Observe(s.Reg.GaugeByKey(key).Value())
		sr.Roll(start, end)
	}
	for _, key := range s.Reg.HistogramKeys() {
		sum, ex, _ := s.Reg.HistogramByKey(key).TakeWindowEx()
		s.get(key + ".window").Append(Window{Start: start, End: end, Summary: sum, Exemplar: ex})
	}

	if s.Bus != nil {
		s.Bus.Publish(events.KindSample, "sampler",
			events.F("tick", strconv.Itoa(s.ticks)),
			events.F("series", strconv.Itoa(len(s.series))))
	}
	s.evalRules()
}

func (s *Sampler) evalRules() {
	for _, r := range s.rules {
		sr := s.series[r.Series]
		if sr == nil {
			continue
		}
		w, ok := sr.Last()
		if !ok {
			continue
		}
		// Empty windows carry no evidence either way for value statistics;
		// they still count for StatCount/StatRate (zero traffic is a fact).
		if w.N == 0 && r.Stat != StatCount && r.Stat != StatRate {
			r.streak = 0
			continue
		}
		v := r.Stat.Of(w)
		if r.holds(v) {
			r.streak++
		} else {
			r.streak = 0
		}
		switch {
		case !r.firing && r.streak >= r.For:
			r.firing = true
			s.alert(r, "firing", v)
		case r.firing && r.streak == 0:
			r.firing = false
			s.alert(r, "resolved", v)
		}
	}
}

func (s *Sampler) alert(r *Rule, state string, v float64) {
	if s.Bus == nil {
		return
	}
	s.Bus.Publish(events.KindAlert, "rule/"+r.Name,
		events.F("state", state),
		events.F("series", r.Series),
		events.F("stat", r.Stat.String()),
		events.F("op", r.Op.String()),
		events.F("value", strconv.FormatFloat(v, 'g', 6, 64)),
		events.F("threshold", strconv.FormatFloat(r.Threshold, 'g', 6, 64)))
}

// SeriesCond adapts one sampled series statistic into a QuO system
// condition object: the closed-loop feed. Contracts evaluating the
// condition see the statistic of the most recent non-empty window —
// i.e. what the monitoring plane measured, not what a probe hand-set.
type SeriesCond struct {
	name    string
	sampler *Sampler
	series  string
	stat    Stat
	// Default is returned before any non-empty window exists.
	Default float64
}

var _ quo.SysCond = (*SeriesCond)(nil)

// NewSeriesCond creates a condition reading stat of the named series.
func NewSeriesCond(name string, s *Sampler, series string, stat Stat) *SeriesCond {
	return &SeriesCond{name: name, sampler: s, series: series, stat: stat}
}

// HistogramCond reads a statistic of a histogram's per-window series
// (key + ".window").
func HistogramCond(name string, s *Sampler, histKey string, stat Stat) *SeriesCond {
	return NewSeriesCond(name, s, histKey+".window", stat)
}

// CounterRateCond reads a counter's per-second rate series.
func CounterRateCond(name string, s *Sampler, counterKey string) *SeriesCond {
	return NewSeriesCond(name, s, counterKey, StatRate)
}

// GaugeCond reads the mean sampled gauge level.
func GaugeCond(name string, s *Sampler, gaugeKey string) *SeriesCond {
	return NewSeriesCond(name, s, gaugeKey, StatMean)
}

// Name implements quo.SysCond.
func (c *SeriesCond) Name() string { return c.name }

// Value implements quo.SysCond: the configured statistic of the most
// recent non-empty window, or Default before one exists.
func (c *SeriesCond) Value() float64 {
	sr := c.sampler.Series(c.series)
	if sr == nil {
		return c.Default
	}
	// Rate/count statistics are meaningful on empty windows (zero); value
	// statistics need at least one observation.
	if c.stat == StatCount || c.stat == StatRate {
		if w, ok := sr.Last(); ok {
			return c.stat.Of(w)
		}
		return c.Default
	}
	w, ok := sr.LastNonEmpty()
	if !ok {
		return c.Default
	}
	return c.stat.Of(w)
}
