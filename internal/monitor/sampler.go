package monitor

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/quo"
	"repro/internal/sim"
	"repro/internal/trace/telemetry"
)

// DefaultEvery is the sampling period when none is configured.
const DefaultEvery = 250 * time.Millisecond

// RuleOp is the comparison direction of an alert rule.
type RuleOp int

const (
	// Above fires when the observed statistic exceeds the threshold.
	Above RuleOp = iota + 1
	// Below fires when the observed statistic falls under the threshold.
	Below
)

func (op RuleOp) String() string {
	if op == Below {
		return "below"
	}
	return "above"
}

// Rule is a threshold alert over one series statistic. Grammar:
//
//	ALERT <name> WHEN <series>.<stat> {above|below} <threshold> FOR <n> windows
//
// The rule fires after the condition has held for For consecutive
// closed windows (empty windows break the streak) and resolves on the
// first window where it no longer holds. Firing and resolving publish
// KindAlert records on the bus.
type Rule struct {
	Name      string
	Series    string // sampler series name (canonical instrument key [+ .window suffix])
	Stat      Stat
	Op        RuleOp
	Threshold float64
	For       int // consecutive windows required; <=1 means immediate

	streak int
	firing bool
}

func (r *Rule) holds(v float64) bool {
	if r.Op == Below {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// Sampler walks a telemetry registry on a fixed virtual-time period,
// turning instruments into bounded time series:
//
//   - each counter becomes a per-window delta series (one observation
//     per tick: the increase since the previous tick),
//   - each gauge becomes a per-window level series (its value at the
//     tick),
//   - each histogram's window reservoir is drained via TakeWindow into
//     a per-window distribution series, leaving the cumulative summary
//     untouched.
//
// After appending windows it evaluates alert rules and publishes
// KindAlert transitions on the bus (when one is attached). Series are
// created lazily as instruments appear in the registry, so scenarios
// may register metrics after the sampler starts.
//
// The sampler is clock-abstract (the same injected-clock move the
// breaker package made): NewSampler ticks on a simulation kernel,
// NewWallSampler ticks on the wall clock in its own goroutine against
// a live process's registry. All state is mutex-guarded so wall-clock
// ticks, condition reads, and Stop may race cleanly.
type Sampler struct {
	K     *sim.Kernel // nil in wall-clock mode
	Reg   *telemetry.Registry
	Bus   *events.Bus // optional; alert + tick records
	Every time.Duration
	// WindowCap bounds retained windows per series (DefaultWindows if 0).
	WindowCap int

	now func() sim.Time

	mu         sync.Mutex
	series     map[string]*Series
	prevCount  map[string]float64
	rules      []*Rule
	collectors []func() // run at the top of every tick (runtime collector hook)
	order      []string // series creation order, for deterministic dashboards
	lastTick   sim.Time
	ticks      int
	stopped    bool
	started    bool
	stopCh     chan struct{} // wall mode: signals the ticker goroutine
	doneCh     chan struct{} // wall mode: closed when the goroutine exits
}

// NewSampler creates a sampler over reg ticking every period (
// DefaultEvery if <= 0) on k's virtual clock. The bus may be nil.
func NewSampler(k *sim.Kernel, reg *telemetry.Registry, bus *events.Bus, every time.Duration) *Sampler {
	s := newSampler(reg, bus, every, k.Now)
	s.K = k
	return s
}

// NewWallSampler creates a sampler ticking on the wall clock: Start
// launches a goroutine sampling every period and Stop halts it
// synchronously. now anchors the window-timestamp domain — pass the
// wire tracer's Elapsed so windows line up with spans and bus records,
// or nil to anchor at the sampler's creation.
func NewWallSampler(reg *telemetry.Registry, bus *events.Bus, every time.Duration, now func() sim.Time) *Sampler {
	if now == nil {
		start := time.Now()
		now = func() sim.Time { return sim.Time(time.Since(start)) }
	}
	return newSampler(reg, bus, every, now)
}

func newSampler(reg *telemetry.Registry, bus *events.Bus, every time.Duration, now func() sim.Time) *Sampler {
	if every <= 0 {
		every = DefaultEvery
	}
	return &Sampler{
		Reg:       reg,
		Bus:       bus,
		Every:     every,
		now:       now,
		series:    make(map[string]*Series),
		prevCount: make(map[string]float64),
	}
}

// AddRule registers an alert rule evaluated after every tick.
func (s *Sampler) AddRule(r *Rule) *Sampler {
	if r.For < 1 {
		r.For = 1
	}
	s.mu.Lock()
	s.rules = append(s.rules, r)
	s.mu.Unlock()
	return s
}

// AddCollector registers fn to run at the top of every tick, before
// instruments are read — the hook the Go runtime collector uses so each
// window carries a fresh snapshot of process health.
func (s *Sampler) AddCollector(fn func()) *Sampler {
	s.mu.Lock()
	s.collectors = append(s.collectors, fn)
	s.mu.Unlock()
	return s
}

// Start schedules the recurring sampling tick. In wall-clock mode it
// may be called again after Stop to resume sampling.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.stopped = false
	s.lastTick = s.now()
	if s.K != nil {
		s.mu.Unlock()
		var tick func()
		tick = func() {
			if s.isStopped() {
				return
			}
			s.Tick()
			s.K.After(s.Every, tick)
		}
		s.K.After(s.Every, tick)
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stopCh, s.doneCh = stop, done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(s.Every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Tick()
			}
		}
	}()
}

// Stop halts sampling after the current tick. In wall-clock mode it
// waits for the ticker goroutine to exit before returning, so callers
// may tear down the registry or bus immediately after.
func (s *Sampler) Stop() {
	s.mu.Lock()
	if s.stopped || !s.started {
		s.stopped = true
		s.mu.Unlock()
		return
	}
	s.stopped = true
	stop, done := s.stopCh, s.doneCh
	s.stopCh, s.doneCh = nil, nil
	if s.K == nil {
		// Wall mode supports restart; the simulation kernel schedule is
		// one-shot like before.
		s.started = false
	}
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

func (s *Sampler) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// Ticks returns the number of completed sampling ticks.
func (s *Sampler) Ticks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// get returns the named series, creating it if needed. Caller holds mu.
func (s *Sampler) get(name string) *Series {
	sr, ok := s.series[name]
	if !ok {
		sr = NewSeries(name, s.WindowCap)
		s.series[name] = sr
		s.order = append(s.order, name)
	}
	return sr
}

// Series returns the series for a canonical instrument key (histograms
// additionally expose "<key>.window"), or nil if never sampled. The
// returned series is itself safe for concurrent reads.
func (s *Sampler) Series(name string) *Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.series[name]
}

// SeriesNames returns all series in creation order (registry key order
// at each tick, so deterministic for a deterministic scenario).
func (s *Sampler) SeriesNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Tick closes one sampling window: runs collectors, reads every
// instrument, appends window summaries, and evaluates alert rules.
// Exposed so tests and scenarios can force a final window at shutdown.
func (s *Sampler) Tick() {
	s.mu.Lock()
	collectors := s.collectors
	s.mu.Unlock()
	// Collectors touch only the (thread-safe) registry; run them outside
	// the sampler lock so a slow collector cannot stall readers.
	for _, fn := range collectors {
		fn()
	}

	s.mu.Lock()
	start, end := s.lastTick, s.now()
	s.lastTick = end
	s.ticks++

	for _, key := range s.Reg.CounterKeys() {
		cur := s.Reg.CounterByKey(key).Value()
		delta := cur - s.prevCount[key]
		s.prevCount[key] = cur
		sr := s.get(key)
		sr.Observe(delta)
		sr.Roll(start, end)
	}
	for _, key := range s.Reg.GaugeKeys() {
		sr := s.get(key)
		sr.Observe(s.Reg.GaugeByKey(key).Value())
		sr.Roll(start, end)
	}
	for _, key := range s.Reg.HistogramKeys() {
		sum, ex, _ := s.Reg.HistogramByKey(key).TakeWindowEx()
		s.get(key + ".window").Append(Window{Start: start, End: end, Summary: sum, Exemplar: ex})
	}

	var pending []pendingRecord
	if s.Bus != nil {
		pending = append(pending, pendingRecord{
			kind:   events.KindSample,
			source: "sampler",
			fields: []events.Field{
				events.F("tick", strconv.Itoa(s.ticks)),
				events.F("series", strconv.Itoa(len(s.series))),
			},
		})
	}
	pending = s.evalRules(pending)
	s.mu.Unlock()

	// Publish outside the lock: bus subscribers (profiler, contracts) may
	// read sampler state from their callbacks.
	for _, p := range pending {
		s.Bus.Publish(p.kind, p.source, p.fields...)
	}
}

type pendingRecord struct {
	kind   events.Kind
	source string
	fields []events.Field
}

// evalRules updates rule streaks and appends alert transitions to
// pending. Caller holds mu.
func (s *Sampler) evalRules(pending []pendingRecord) []pendingRecord {
	for _, r := range s.rules {
		sr := s.series[r.Series]
		if sr == nil {
			continue
		}
		w, ok := sr.Last()
		if !ok {
			continue
		}
		// Empty windows carry no evidence either way for value statistics;
		// they still count for StatCount/StatRate (zero traffic is a fact).
		if w.N == 0 && r.Stat != StatCount && r.Stat != StatRate {
			r.streak = 0
			continue
		}
		v := r.Stat.Of(w)
		if r.holds(v) {
			r.streak++
		} else {
			r.streak = 0
		}
		switch {
		case !r.firing && r.streak >= r.For:
			r.firing = true
			pending = s.alert(pending, r, "firing", v)
		case r.firing && r.streak == 0:
			r.firing = false
			pending = s.alert(pending, r, "resolved", v)
		}
	}
	return pending
}

func (s *Sampler) alert(pending []pendingRecord, r *Rule, state string, v float64) []pendingRecord {
	if s.Bus == nil {
		return pending
	}
	return append(pending, pendingRecord{
		kind:   events.KindAlert,
		source: "rule/" + r.Name,
		fields: []events.Field{
			events.F("state", state),
			events.F("series", r.Series),
			events.F("stat", r.Stat.String()),
			events.F("op", r.Op.String()),
			events.F("value", strconv.FormatFloat(v, 'g', 6, 64)),
			events.F("threshold", strconv.FormatFloat(r.Threshold, 'g', 6, 64)),
		},
	})
}

// SeriesCond adapts one sampled series statistic into a QuO system
// condition object: the closed-loop feed. Contracts evaluating the
// condition see the statistic of the most recent non-empty window —
// i.e. what the monitoring plane measured, not what a probe hand-set.
type SeriesCond struct {
	name    string
	sampler *Sampler
	series  string
	stat    Stat
	// Default is returned before any non-empty window exists.
	Default float64
}

var _ quo.SysCond = (*SeriesCond)(nil)

// NewSeriesCond creates a condition reading stat of the named series.
func NewSeriesCond(name string, s *Sampler, series string, stat Stat) *SeriesCond {
	return &SeriesCond{name: name, sampler: s, series: series, stat: stat}
}

// HistogramCond reads a statistic of a histogram's per-window series
// (key + ".window").
func HistogramCond(name string, s *Sampler, histKey string, stat Stat) *SeriesCond {
	return NewSeriesCond(name, s, histKey+".window", stat)
}

// CounterRateCond reads a counter's per-second rate series.
func CounterRateCond(name string, s *Sampler, counterKey string) *SeriesCond {
	return NewSeriesCond(name, s, counterKey, StatRate)
}

// GaugeCond reads the mean sampled gauge level.
func GaugeCond(name string, s *Sampler, gaugeKey string) *SeriesCond {
	return NewSeriesCond(name, s, gaugeKey, StatMean)
}

// Name implements quo.SysCond.
func (c *SeriesCond) Name() string { return c.name }

// Value implements quo.SysCond: the configured statistic of the most
// recent non-empty window, or Default before one exists.
func (c *SeriesCond) Value() float64 {
	sr := c.sampler.Series(c.series)
	if sr == nil {
		return c.Default
	}
	// Rate/count statistics are meaningful on empty windows (zero); value
	// statistics need at least one observation.
	if c.stat == StatCount || c.stat == StatRate {
		if w, ok := sr.Last(); ok {
			return c.stat.Of(w)
		}
		return c.Default
	}
	w, ok := sr.LastNonEmpty()
	if !ok {
		return c.Default
	}
	return c.stat.Of(w)
}
