package monitor

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/trace/telemetry"
)

// ErrProfileBusy is returned when a CPU capture is requested while one
// is already running: Go's CPU profiler is a process-global singleton,
// so overlapping captures are skipped rather than queued.
var ErrProfileBusy = errors.New("monitor: cpu profile already in progress")

// ProfilerConfig configures a Profiler.
type ProfilerConfig struct {
	// Dir is the directory holding captured profiles (created if
	// missing). Required.
	Dir string
	// MaxFiles bounds retained profiles per kind (cpu/heap); the oldest
	// are deleted first. Default 8.
	MaxFiles int
	// CPUDuration is how long each CPU capture samples. Default 2s.
	CPUDuration time.Duration
	// Cooldown is the minimum spacing between alert-triggered CPU
	// captures: triggers arriving inside the window are counted as
	// skipped, so a storm of firing alerts costs one profile, not one
	// per alert. 0 lets every firing trigger capture.
	Cooldown time.Duration
	// Every is the periodic heap-capture interval; 0 disables periodic
	// captures (alert-triggered captures still work).
	Every time.Duration
	// Bus, when set, is watched for firing alert/slo_burn records — each
	// triggers a CPU capture whose completion is published as a
	// KindProfile record carrying the profile path and the trigger.
	// Periodic captures publish KindProfile records too.
	Bus *events.Bus
	// Registry, when set, receives monitor.profiler.* counters
	// (captures{kind=...}, skipped, errors).
	Registry *telemetry.Registry
}

// Profiler captures pprof profiles into a bounded on-disk ring:
// periodic heap snapshots for drift, and alert-triggered CPU profiles
// so the cause of a QoS violation is captured while it is happening —
// the firing record's profile is on disk before an operator could have
// typed the curl command.
type Profiler struct {
	cfg ProfilerConfig

	seq      atomic.Uint64 // capture sequence, embedded in filenames
	cpuBusy  atomic.Bool   // CPU profiling is process-global: single-flight
	lastTrig atomic.Int64  // UnixNano of the last alert-triggered capture

	mu      sync.Mutex
	started bool
	sub     *events.BusSub
	stopCh  chan struct{}
	doneCh  chan struct{}
	wg      sync.WaitGroup // in-flight triggered captures
}

// NewProfiler creates a profiler, creating cfg.Dir if needed.
func NewProfiler(cfg ProfilerConfig) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, errors.New("monitor: profiler requires a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if cfg.MaxFiles <= 0 {
		cfg.MaxFiles = 8
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 2 * time.Second
	}
	return &Profiler{cfg: cfg}, nil
}

// Start begins periodic captures (when Every > 0) and subscribes to the
// bus (when set) for alert-triggered CPU captures.
func (p *Profiler) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	p.started = true
	if p.cfg.Bus != nil {
		p.sub = p.cfg.Bus.Subscribe(p.onRecord, events.KindAlert, events.KindSLOBurn)
	}
	if p.cfg.Every > 0 {
		stop := make(chan struct{})
		done := make(chan struct{})
		p.stopCh, p.doneCh = stop, done
		go func() {
			defer close(done)
			t := time.NewTicker(p.cfg.Every)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if path, err := p.CaptureHeap("periodic"); err == nil {
						p.publishProfile("heap", path, "periodic", nil)
					}
				}
			}
		}()
	}
}

// Stop cancels the bus subscription, halts periodic captures, and waits
// for in-flight triggered captures to finish.
func (p *Profiler) Stop() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.started = false
	if p.sub != nil {
		p.sub.Cancel()
		p.sub = nil
	}
	stop, done := p.stopCh, p.doneCh
	p.stopCh, p.doneCh = nil, nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	p.wg.Wait()
}

// onRecord is the bus callback: a firing alert or burn grabs a CPU
// profile. The capture runs in its own goroutine — a bus callback must
// never block publishers for a multi-second profile.
func (p *Profiler) onRecord(r events.Record) {
	if fieldValue(r, "state") != "firing" {
		return
	}
	if p.cfg.Cooldown > 0 {
		last := p.lastTrig.Load()
		now := time.Now().UnixNano()
		if last != 0 && time.Duration(now-last) < p.cfg.Cooldown {
			p.count("skipped")
			return
		}
		if !p.lastTrig.CompareAndSwap(last, now) {
			p.count("skipped")
			return
		}
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		tag := sanitizeTag(r.Source)
		path, err := p.CaptureCPU(tag)
		if err != nil {
			return // ErrProfileBusy or I/O failure, already counted
		}
		p.publishProfile("cpu", path, r.Source, &r)
	}()
}

// CaptureCPU records a CPU profile for the configured duration and
// returns its path. Only one CPU capture may run at a time
// (ErrProfileBusy otherwise).
func (p *Profiler) CaptureCPU(tag string) (string, error) {
	if !p.cpuBusy.CompareAndSwap(false, true) {
		p.count("skipped")
		return "", ErrProfileBusy
	}
	defer p.cpuBusy.Store(false)
	path := p.nextPath("cpu", tag)
	f, err := os.Create(path)
	if err != nil {
		p.count("errors")
		return "", err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		p.count("errors")
		return "", err
	}
	time.Sleep(p.cfg.CPUDuration)
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		p.count("errors")
		return "", err
	}
	p.countKind("cpu")
	p.prune("cpu")
	return path, nil
}

// CaptureHeap writes a heap profile and returns its path.
func (p *Profiler) CaptureHeap(tag string) (string, error) {
	path := p.nextPath("heap", tag)
	f, err := os.Create(path)
	if err != nil {
		p.count("errors")
		return "", err
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		os.Remove(path)
		p.count("errors")
		return "", err
	}
	if err := f.Close(); err != nil {
		p.count("errors")
		return "", err
	}
	p.countKind("heap")
	p.prune("heap")
	return path, nil
}

// Files returns the retained profile paths of a kind ("cpu" or
// "heap"), oldest first.
func (p *Profiler) Files(kind string) []string {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return nil
	}
	type numbered struct {
		seq  uint64
		path string
	}
	var out []numbered
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), kind); ok {
			out = append(out, numbered{seq, filepath.Join(p.cfg.Dir, e.Name())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	paths := make([]string, len(out))
	for i, n := range out {
		paths[i] = n.path
	}
	return paths
}

// prune deletes the oldest profiles of a kind beyond MaxFiles.
func (p *Profiler) prune(kind string) {
	files := p.Files(kind)
	for len(files) > p.cfg.MaxFiles {
		os.Remove(files[0])
		files = files[1:]
	}
}

func (p *Profiler) nextPath(kind, tag string) string {
	seq := p.seq.Add(1)
	name := fmt.Sprintf("%s-%06d-%s.pprof", kind, seq, sanitizeTag(tag))
	return filepath.Join(p.cfg.Dir, name)
}

// parseSeq extracts the sequence number from "<kind>-<seq>-<tag>.pprof".
func parseSeq(name, kind string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, kind+"-")
	if !ok || !strings.HasSuffix(name, ".pprof") {
		return 0, false
	}
	i := strings.IndexByte(rest, '-')
	if i < 0 {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest[:i], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

func (p *Profiler) publishProfile(kind, path, trigger string, cause *events.Record) {
	if p.cfg.Bus == nil {
		return
	}
	fields := []events.Field{
		events.F("kind", kind),
		events.F("path", path),
		events.F("trigger", trigger),
	}
	if cause != nil {
		fields = append(fields, events.F("cause_seq", strconv.FormatUint(cause.Seq, 10)))
	}
	p.cfg.Bus.Publish(events.KindProfile, "profiler", fields...)
}

func (p *Profiler) count(name string) {
	if p.cfg.Registry != nil {
		p.cfg.Registry.Counter("monitor.profiler." + name).Inc()
	}
}

func (p *Profiler) countKind(kind string) {
	if p.cfg.Registry != nil {
		p.cfg.Registry.Counter("monitor.profiler.captures", telemetry.L("kind", kind)).Inc()
	}
}

func fieldValue(r events.Record, key string) string {
	for _, f := range r.Fields {
		if f.K == key {
			return f.V
		}
	}
	return ""
}

// sanitizeTag maps an arbitrary trigger name onto a filename-safe tag.
func sanitizeTag(tag string) string {
	if tag == "" {
		return "manual"
	}
	var b strings.Builder
	for _, r := range tag {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}
