package monitor

import (
	"net"
	"net/http"
	"time"

	"repro/internal/trace/telemetry"
)

// StartHTTP binds a TCP listener on addr (host:port; port 0 picks a
// free one) and serves the monitoring mux — /metrics in the Prometheus
// exposition format plus the explicit /debug/pprof handlers — for reg
// on it. It returns the bound address (so callers that asked for port 0
// can print the real endpoint) and a stop function that closes the
// server, ignoring in-flight scrapes beyond a short grace.
//
// This is the live-process counterpart of Handler/NewMux: qosserve and
// the wire benchmarks call it so a real scrape or a pprof profile can
// watch an actual running process, where the simulation CLIs only
// render the exposition text.
func StartHTTP(addr string, reg *telemetry.Registry) (string, func(), error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(lis) }()
	stop := func() { _ = srv.Close() }
	return lis.Addr().String(), stop, nil
}
