package monitor

import (
	"net"
	"net/http"
	"time"

	"repro/internal/trace/telemetry"
)

// StartHTTP binds a TCP listener on addr (host:port; port 0 picks a
// free one) and serves the monitoring mux — /metrics in the Prometheus
// exposition format plus the explicit /debug/pprof handlers, and any
// optional live-introspection routes (/debug/qos, /events) — for reg
// on it. It returns the bound address (so callers that asked for port 0
// can print the real endpoint) and a stop function that closes the
// server and waits for the serve goroutine to exit, so stopping leaks
// nothing.
//
// This is the live-process counterpart of Handler/NewMux: qosserve and
// the wire benchmarks call it so a real scrape or a pprof profile can
// watch an actual running process, where the simulation CLIs only
// render the exposition text.
func StartHTTP(addr string, reg *telemetry.Registry, opts ...MuxOption) (string, func(), error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, opts...), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	stop := func() {
		// Close shuts the listener and every active connection; streaming
		// handlers observe their request context cancel and return.
		_ = srv.Close()
		<-done
	}
	return lis.Addr().String(), stop, nil
}
