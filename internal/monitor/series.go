// Package monitor is the live QoS monitoring plane: it samples the
// telemetry registry on sim-clock ticks into bounded ring-buffer time
// series, exposes current state in Prometheus text exposition format
// (pure Render or an optional net/http endpoint with pprof wiring),
// merges middleware occurrences into one ordered event timeline via the
// events bus, and feeds sampled series back into QuO system condition
// objects so contracts react to measured conditions — the monitoring-
// feeds-adaptation loop the paper's QuO system condition objects embody.
package monitor

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace/telemetry"
)

// Window is one closed sampling interval of a series.
type Window struct {
	Start, End sim.Time
	metrics.Summary
	// Exemplar links the window's worst observation to a concrete trace
	// (histogram windows only; Valid() false when no observation in the
	// window carried a trace context).
	Exemplar telemetry.Exemplar
}

// Rate returns observations-weighted throughput: Sum over the window
// length in seconds (for counter-delta series, the per-second rate).
func (w Window) Rate() float64 {
	d := (w.End - w.Start).Seconds()
	if d <= 0 {
		return 0
	}
	return w.Mean * float64(w.N) / d
}

// Stat selects one statistic of a window.
type Stat int

const (
	// StatMean is the window mean.
	StatMean Stat = iota + 1
	// StatMin is the window minimum.
	StatMin
	// StatMax is the window maximum.
	StatMax
	// StatP50 is the window median.
	StatP50
	// StatP95 is the window 95th percentile.
	StatP95
	// StatP99 is the window 99th percentile.
	StatP99
	// StatCount is the number of observations in the window.
	StatCount
	// StatRate is Sum/window-length: the per-second rate of a
	// counter-delta series.
	StatRate
)

func (s Stat) String() string {
	switch s {
	case StatMean:
		return "mean"
	case StatMin:
		return "min"
	case StatMax:
		return "max"
	case StatP50:
		return "p50"
	case StatP95:
		return "p95"
	case StatP99:
		return "p99"
	case StatCount:
		return "count"
	case StatRate:
		return "rate"
	default:
		return fmt.Sprintf("Stat(%d)", int(s))
	}
}

// Of extracts the statistic from a window.
func (s Stat) Of(w Window) float64 {
	switch s {
	case StatMean:
		return w.Mean
	case StatMin:
		return w.Min
	case StatMax:
		return w.Max
	case StatP50:
		return w.P50
	case StatP95:
		return w.P95
	case StatP99:
		return w.P99
	case StatCount:
		return float64(w.N)
	case StatRate:
		return w.Rate()
	default:
		return 0
	}
}

// DefaultWindows is the ring capacity when a Series is created with no
// explicit window count: enough for a 60s scenario sampled at 250ms.
const DefaultWindows = 256

// Series is a bounded time series of window summaries: observations
// accumulate in a deterministic reservoir until Roll closes the window,
// and closed windows live in a fixed-capacity ring (oldest evicted
// first), so a long-running scenario's monitoring memory is bounded no
// matter how often it samples. Series are safe for concurrent use: a
// wall-clock sampler goroutine may roll windows while condition objects
// and dashboards read them.
type Series struct {
	Name string
	mu   sync.Mutex
	res  *telemetry.Reservoir
	wins []Window
	head int // index of oldest
	n    int // number of valid windows
}

// NewSeries creates a series retaining at most windows closed windows
// (DefaultWindows if <= 0).
func NewSeries(name string, windows int) *Series {
	if windows <= 0 {
		windows = DefaultWindows
	}
	return &Series{Name: name, res: telemetry.NewReservoir(0), wins: make([]Window, windows)}
}

// Observe records one value into the currently open window.
func (s *Series) Observe(v float64) {
	s.mu.Lock()
	s.res.Observe(v)
	s.mu.Unlock()
}

// Roll closes the open window over [start, end), appending its summary
// to the ring and resetting the reservoir.
func (s *Series) Roll(start, end sim.Time) Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := Window{Start: start, End: end, Summary: s.res.Summary()}
	s.res.Reset()
	s.append(w)
	return w
}

// Append adds an externally summarized window (the sampler uses it for
// histogram windows drained via TakeWindow).
func (s *Series) Append(w Window) {
	s.mu.Lock()
	s.append(w)
	s.mu.Unlock()
}

func (s *Series) append(w Window) {
	if s.n < len(s.wins) {
		s.wins[(s.head+s.n)%len(s.wins)] = w
		s.n++
		return
	}
	s.wins[s.head] = w
	s.head = (s.head + 1) % len(s.wins)
}

// Len returns the number of retained windows.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Window returns retained window i (0 = oldest).
func (s *Series) Window(i int) Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window(i)
}

func (s *Series) window(i int) Window { return s.wins[(s.head+i)%len(s.wins)] }

// Windows returns the retained windows, oldest first.
func (s *Series) Windows() []Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Window, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.window(i)
	}
	return out
}

// Last returns the most recently closed window.
func (s *Series) Last() (Window, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Window{}, false
	}
	return s.window(s.n - 1), true
}

// LastNonEmpty returns the most recent window holding at least one
// observation — the value a condition should act on when the source
// went quiet for a tick.
func (s *Series) LastNonEmpty() (Window, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := s.n - 1; i >= 0; i-- {
		if w := s.window(i); w.N > 0 {
			return w, true
		}
	}
	return Window{}, false
}

// RenderTable renders the retained windows as a metrics.Table with one
// row per window, the dashboard's figure-series form.
func (s *Series) RenderTable(title string) *metrics.Table {
	tb := metrics.NewTable(title, "t", "n", "mean", "p50", "p95", "p99", "max", "exemplar")
	for _, w := range s.Windows() {
		ex := "-"
		if w.Exemplar.Valid() {
			ex = fmt.Sprintf("trace=%d", w.Exemplar.TraceID)
		}
		tb.AddRow(
			fmt.Sprint(time.Duration(w.End)),
			fmt.Sprint(w.N),
			fmt.Sprintf("%.6g", w.Mean),
			fmt.Sprintf("%.6g", w.P50),
			fmt.Sprintf("%.6g", w.P95),
			fmt.Sprintf("%.6g", w.P99),
			fmt.Sprintf("%.6g", w.Max),
			ex,
		)
	}
	return tb
}

// Sparkline renders the chosen statistic of every retained window as a
// compact unicode strip, for timeline-at-a-glance output.
func (s *Series) Sparkline(st Stat) string {
	ws := s.Windows()
	if len(ws) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := st.Of(ws[0]), st.Of(ws[0])
	for _, w := range ws[1:] {
		v := st.Of(w)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, w := range ws {
		idx := 0
		if hi > lo {
			idx = int((st.Of(w) - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
