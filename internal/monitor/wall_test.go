package monitor

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/sim"
	"repro/internal/trace/telemetry"
)

// leakCheck fails the test if teardown leaves more goroutines running
// than were alive when it was called (same pattern as the wire plane's
// leak audit). Call it first so its cleanup runs last.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after teardown\n%s", before, now, buf[:n])
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWallSamplerTicksAndRestart pins the wall-clock sampler: it ticks
// on real time without a kernel, Stop is synchronous and leak-free, and
// a stopped sampler can be started again.
func TestWallSamplerTicksAndRestart(t *testing.T) {
	leakCheck(t)
	reg := telemetry.NewRegistry()
	c := reg.Counter("req")
	s := NewWallSampler(reg, nil, 3*time.Millisecond, nil)

	s.Start()
	c.Inc()
	waitFor(t, 2*time.Second, func() bool { return s.Ticks() >= 3 }, "3 sampler ticks")
	s.Stop()
	n := s.Ticks()
	time.Sleep(15 * time.Millisecond)
	if got := s.Ticks(); got != n {
		t.Fatalf("sampler ticked after Stop: %d -> %d", n, got)
	}

	// Restart resumes ticking.
	s.Start()
	waitFor(t, 2*time.Second, func() bool { return s.Ticks() > n }, "tick after restart")
	s.Stop()

	if sr := s.Series("req"); sr == nil || sr.Len() == 0 {
		t.Fatal("counter series missing after wall sampling")
	}
}

// TestWallSamplerConcurrency drives observations, series reads, and a
// second Stop/Start cycle concurrently with the ticker; the test exists
// to fail under -race if any sampler state is unguarded.
func TestWallSamplerConcurrency(t *testing.T) {
	leakCheck(t)
	reg := telemetry.NewRegistry()
	c := reg.Counter("req")
	h := reg.Histogram("lat_ms")
	s := NewWallSampler(reg, nil, time.Millisecond, nil)
	s.AddRule(&Rule{Name: "hot", Series: "lat_ms.window", Stat: StatP99, Op: Above, Threshold: 1})
	s.Start()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				h.Observe(5)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if sr := s.Series("lat_ms.window"); sr != nil {
					sr.LastNonEmpty()
				}
				s.SeriesNames()
			}
		}
	}()

	waitFor(t, 2*time.Second, func() bool { return s.Ticks() >= 5 }, "5 ticks under load")
	close(stop)
	wg.Wait()
	s.Stop()
}

// TestRuntimeCollector pins the runtime/metrics bridge: a collect pass
// populates goroutine, heap and GC instruments in the registry.
func TestRuntimeCollector(t *testing.T) {
	reg := telemetry.NewRegistry()
	rc := NewRuntimeCollector(reg)
	rc.Collect()
	// Force some allocation and a GC between passes so cumulative
	// metrics move.
	garbage := make([][]byte, 256)
	for i := range garbage {
		garbage[i] = make([]byte, 4096)
	}
	runtime.GC()
	_ = garbage
	rc.Collect()

	if v := reg.Gauge("go.goroutines").Value(); v < 1 {
		t.Fatalf("go.goroutines = %v, want >= 1", v)
	}
	if v := reg.Gauge("go.mem_total_bytes").Value(); v <= 0 {
		t.Fatalf("go.mem_total_bytes = %v, want > 0", v)
	}
	if v := reg.Counter("go.heap_alloc_bytes").Value(); v <= 0 {
		t.Fatalf("go.heap_alloc_bytes = %v, want > 0", v)
	}
	if v := reg.Counter("go.gc_cycles").Value(); v < 1 {
		t.Fatalf("go.gc_cycles = %v, want >= 1 after runtime.GC", v)
	}
}

// TestProfilerAlertTriggeredCPU pins the tentpole loop: an alert record
// transitioning to firing on the bus triggers a CPU profile capture,
// the capture lands in the ring directory, and a KindProfile record
// stamped with the path and trigger is published back.
func TestProfilerAlertTriggeredCPU(t *testing.T) {
	leakCheck(t)
	dir := t.TempDir()
	bus := events.NewWallBus(nil)
	reg := telemetry.NewRegistry()
	p, err := NewProfiler(ProfilerConfig{
		Dir:         dir,
		CPUDuration: 30 * time.Millisecond,
		Bus:         bus,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var profiles []events.Record
	bus.Subscribe(func(r events.Record) {
		mu.Lock()
		profiles = append(profiles, r)
		mu.Unlock()
	}, events.KindProfile)

	p.Start()
	bus.Publish(events.KindAlert, "rule/ef_hot",
		events.F("state", "firing"),
		events.F("stat", "p99"))
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(profiles) > 0
	}, "alert-triggered profile record")
	p.Stop()

	mu.Lock()
	rec := profiles[0]
	mu.Unlock()
	var path, trigger string
	for _, f := range rec.Fields {
		switch f.K {
		case "path":
			path = f.V
		case "trigger":
			trigger = f.V
		}
	}
	if trigger != "rule/ef_hot" {
		t.Fatalf("trigger = %q, want rule/ef_hot", trigger)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatalf("captured profile %q missing or empty: %v", path, err)
	}
	if got := reg.Counter("monitor.profiler.captures", telemetry.L("kind", "cpu")).Value(); got != 1 {
		t.Fatalf("cpu capture counter = %v, want 1", got)
	}
	// A clearing alert must not trigger a capture.
	bus.Publish(events.KindAlert, "rule/ef_hot", events.F("state", "resolved"))
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	n := len(profiles)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("profile records = %d after resolved alert, want 1", n)
	}
}

// TestProfilerAlertCooldown pins the rate limit on triggered captures:
// with a Cooldown configured, the first firing alert captures a CPU
// profile and a second firing alert inside the window is counted as
// skipped instead of capturing again — an alert storm costs one
// profile, not one per alert.
func TestProfilerAlertCooldown(t *testing.T) {
	leakCheck(t)
	dir := t.TempDir()
	bus := events.NewWallBus(nil)
	reg := telemetry.NewRegistry()
	p, err := NewProfiler(ProfilerConfig{
		Dir:         dir,
		CPUDuration: 20 * time.Millisecond,
		Cooldown:    time.Hour,
		Bus:         bus,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	captures := func() float64 {
		return reg.Counter("monitor.profiler.captures", telemetry.L("kind", "cpu")).Value()
	}
	bus.Publish(events.KindAlert, "rule/ef_hot", events.F("state", "firing"))
	waitFor(t, 5*time.Second, func() bool { return captures() == 1 }, "first triggered capture")

	bus.Publish(events.KindAlert, "rule/ef_hot", events.F("state", "firing"))
	waitFor(t, 2*time.Second, func() bool {
		return reg.Counter("monitor.profiler.skipped").Value() >= 1
	}, "second trigger counted as skipped")
	if got := captures(); got != 1 {
		t.Fatalf("cpu captures after cooled-down trigger = %v, want 1", got)
	}
}

// TestProfilerRingBound pins the on-disk ring: captures beyond MaxFiles
// evict the oldest file of that kind.
func TestProfilerRingBound(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerConfig{Dir: dir, MaxFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for i := 0; i < 5; i++ {
		if last, err = p.CaptureHeap("test"); err != nil {
			t.Fatal(err)
		}
	}
	files := p.Files("heap")
	if len(files) != 2 {
		t.Fatalf("ring holds %d files, want 2: %v", len(files), files)
	}
	if files[len(files)-1] != last {
		t.Fatalf("newest capture %q not last in ring %v", last, files)
	}
	if _, err := os.Stat(files[0]); err != nil {
		t.Fatalf("surviving ring file missing: %v", err)
	}
}

// TestStartHTTPObservability covers the live endpoint end to end: a
// real /metrics scrape sees registry instruments, pprof answers,
// /debug/qos serves introspection sources, /events streams bus records
// as NDJSON, and stopping the server leaks nothing — including the
// streaming handler.
func TestStartHTTPObservability(t *testing.T) {
	leakCheck(t)
	reg := telemetry.NewRegistry()
	reg.Counter("app.requests", telemetry.L("class", "EF")).Add(3)
	bus := events.NewWallBus(nil)
	ix := NewIntrospector()
	ix.Add("lane", func() any { return map[string]int{"depth": 7} })

	addr, stop, err := StartHTTP("127.0.0.1:0", reg, WithIntrospect(ix), WithEvents(bus))
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, `app_requests{class="EF"} 3`) {
		t.Fatalf("/metrics = %d, missing app_requests: %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d, want 200", code)
	}
	code, body := get("/debug/qos")
	if code != 200 || !strings.Contains(body, `"depth": 7`) {
		t.Fatalf("/debug/qos = %d %q, want lane depth", code, body)
	}

	// Stream /events while publishing two records.
	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type got struct {
		rec RecordJSON
		err error
	}
	recs := make(chan got, 4)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var r RecordJSON
			err := json.Unmarshal(sc.Bytes(), &r)
			recs <- got{r, err}
		}
	}()
	// The subscription is registered inside the handler; give the
	// request a moment to reach it before publishing.
	time.Sleep(20 * time.Millisecond)
	bus.Publish(events.KindAlert, "rule/x", events.F("state", "firing"))
	bus.Publish(events.KindSample, "sampler", events.F("tick", "1"))

	for _, want := range []events.Kind{events.KindAlert, events.KindSample} {
		select {
		case g := <-recs:
			if g.err != nil {
				t.Fatalf("bad NDJSON: %v", g.err)
			}
			if events.Kind(g.rec.Kind) != want {
				t.Fatalf("streamed kind = %q, want %q", g.rec.Kind, want)
			}
			if g.rec.Wall == "" {
				t.Fatal("streamed record missing wall timestamp")
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for %s over /events", want)
		}
	}

	stop() // must also tear down the open /events stream
}

// TestIntrospectorSnapshot pins source registration order and the
// handler's JSON shape.
func TestIntrospectorSnapshot(t *testing.T) {
	ix := NewIntrospector()
	ix.Add("b", func() any { return 2 })
	ix.Add("a", func() any { return map[string]string{"x": "y"} })
	snap := ix.Snapshot()
	if len(snap) != 2 || snap["b"] != 2 {
		t.Fatalf("snapshot = %#v", snap)
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"x":"y"`) {
		t.Fatalf("snapshot JSON = %s", b)
	}
}

// TestWallSamplerAlertsOnBus pins the wall-mode rule loop: a hot
// histogram series trips the rule after For windows and publishes a
// firing KindAlert on the bus.
func TestWallSamplerAlertsOnBus(t *testing.T) {
	leakCheck(t)
	reg := telemetry.NewRegistry()
	bus := events.NewWallBus(nil)
	var mu sync.Mutex
	var alerts []events.Record
	bus.Subscribe(func(r events.Record) {
		mu.Lock()
		alerts = append(alerts, r)
		mu.Unlock()
	}, events.KindAlert)

	h := reg.Histogram("rtt_ms")
	s := NewWallSampler(reg, bus, 2*time.Millisecond, nil)
	s.AddRule(&Rule{Name: "hot", Series: "rtt_ms.window", Stat: StatP99, Op: Above, Threshold: 10, For: 2})
	s.Start()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(50)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(alerts) > 0
	}, "firing alert")
	close(stop)
	s.Stop()

	mu.Lock()
	defer mu.Unlock()
	if alerts[0].Source != "rule/hot" {
		t.Fatalf("alert source = %q, want rule/hot", alerts[0].Source)
	}
	if alerts[0].Wall.IsZero() {
		t.Fatal("wall-bus alert record missing wall timestamp")
	}
}

// TestWallSamplerInjectedClock pins that a wall sampler can run on an
// injected clock: records published through the bus carry the elapsed
// time the caller's now func reports.
func TestWallSamplerInjectedClock(t *testing.T) {
	leakCheck(t)
	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	fake := sim.Time(0)
	now := func() sim.Time {
		mu.Lock()
		defer mu.Unlock()
		return fake
	}
	bus := events.NewWallBus(now)
	var recs []events.Record
	bus.Subscribe(func(r events.Record) {
		mu.Lock()
		recs = append(recs, r)
		mu.Unlock()
	}, events.KindSample)

	s := NewWallSampler(reg, bus, time.Millisecond, now)
	reg.Counter("c").Inc()
	s.Start()
	mu.Lock()
	fake = sim.Time(42 * time.Second)
	mu.Unlock()
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(recs) > 0
	}, "sample record")
	s.Stop()

	mu.Lock()
	defer mu.Unlock()
	if recs[len(recs)-1].At != sim.Time(42*time.Second) {
		t.Fatalf("record At = %v, want the injected clock's 42s", recs[len(recs)-1].At)
	}
}
