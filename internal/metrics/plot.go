package metrics

import (
	"fmt"
	"math"
	"strings"
)

// ASCIIPlot renders a series as a text scatter plot — enough to eyeball
// the shape of a latency time series or a delivery curve in a terminal,
// the way the paper's figures are read.
func ASCIIPlot(s *Series, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	if s.Len() == 0 {
		return fmt.Sprintf("%s: (no data)\n", s.Name)
	}
	minT, maxT := s.Points[0].T, s.Points[0].T
	minV, maxV := s.Points[0].V, s.Points[0].V
	for _, p := range s.Points {
		if p.T < minT {
			minT = p.T
		}
		if p.T > maxT {
			maxT = p.T
		}
		if p.V < minV {
			minV = p.V
		}
		if p.V > maxV {
			maxV = p.V
		}
	}
	tSpan := float64(maxT - minT)
	vSpan := maxV - minV
	if tSpan == 0 {
		tSpan = 1
	}
	if vSpan == 0 {
		vSpan = 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range s.Points {
		x := int(float64(p.T-minT) / tSpan * float64(width-1))
		y := int((p.V - minV) / vSpan * float64(height-1))
		if math.IsNaN(p.V) {
			continue
		}
		row := height - 1 - y
		grid[row][x] = '*'
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.4g .. %.4g]\n", s.Name, minV, maxV)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, " t: %v .. %v\n", minT, maxT)
	return b.String()
}
