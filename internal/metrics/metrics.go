// Package metrics provides the measurement and reporting plumbing shared
// by the experiments: time series of latency samples, summary statistics
// (mean, standard deviation, percentiles), and aligned-text table
// rendering for the paper's tables and figure series.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// Point is one time-stamped observation.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends an observation.
func (s *Series) Add(t sim.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// AddDuration appends a duration observation in seconds.
func (s *Series) AddDuration(t sim.Time, d time.Duration) {
	s.Add(t, d.Seconds())
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Values returns the observation values in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Window returns the sub-series with from <= T < to.
func (s *Series) Window(from, to sim.Time) *Series {
	out := NewSeries(s.Name)
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// Summary reports the distribution of a set of observations.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes a Summary over vs. An empty input yields zeros.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	sum, sqSum := 0.0, 0.0
	for _, v := range sorted {
		sum += v
		sqSum += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sqSum/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	// Percentiles interpolate linearly between order statistics (the
	// same convention as numpy's default): the previous truncation of
	// q*(n-1) biased every percentile low, up to a whole sample's worth
	// on small n.
	pct := func(q float64) float64 {
		rank := q * float64(len(sorted)-1)
		lo := int(rank)
		if lo >= len(sorted)-1 {
			return sorted[len(sorted)-1]
		}
		frac := rank - float64(lo)
		return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
	}
	return Summary{
		N:    len(sorted),
		Mean: mean,
		Std:  math.Sqrt(variance),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  pct(0.50),
		P95:  pct(0.95),
		P99:  pct(0.99),
	}
}

// Summarize returns the summary of the series values.
func (s *Series) Summarize() Summary { return Summarize(s.Values()) }

// MeanDuration returns the mean as a duration (values are seconds).
func (sm Summary) MeanDuration() time.Duration {
	return time.Duration(sm.Mean * float64(time.Second))
}

// StdDuration returns the standard deviation as a duration.
func (sm Summary) StdDuration() time.Duration {
	return time.Duration(sm.Std * float64(time.Second))
}

// PerSecond buckets a series into whole-second counts over [0, horizon).
func (s *Series) PerSecond(horizon int) []int {
	out := make([]int, horizon)
	for _, p := range s.Points {
		sec := int(p.T / time.Second)
		if sec >= 0 && sec < horizon {
			out[sec]++
		}
	}
	return out
}

// Table renders aligned text tables, the output format of the benchmark
// harness (one table per paper table, one series block per figure).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		cells = cells[:len(t.Headers)]
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render produces the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// RenderCSV produces the table as RFC-4180-ish CSV (quotes applied only
// where needed), for piping into plotting tools.
func (t *Table) RenderCSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// WriteCSV emits the series as "seconds,value" rows with a header.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "t_seconds,%s\n", s.Name); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%.6f,%g\n", p.T.Seconds(), p.V); err != nil {
			return err
		}
	}
	return nil
}

// FormatDuration renders a duration with millisecond precision, the
// units the paper's tables use.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.1f ms", float64(d)/float64(time.Millisecond))
}

// FormatPercent renders a fraction as a percentage.
func FormatPercent(frac float64) string {
	return fmt.Sprintf("%.1f%%", 100*frac)
}
