package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	wantStd := math.Sqrt(2) // population std of 1..5
	if math.Abs(s.Std-wantStd) > 1e-9 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummaryDurations(t *testing.T) {
	s := Summarize([]float64{0.010, 0.020, 0.030})
	if s.MeanDuration() != 20*time.Millisecond {
		t.Fatalf("mean duration = %v", s.MeanDuration())
	}
	if s.StdDuration() < 8*time.Millisecond || s.StdDuration() > 8300*time.Microsecond {
		t.Fatalf("std duration = %v", s.StdDuration())
	}
}

func TestSeriesWindow(t *testing.T) {
	s := NewSeries("lat")
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	w := s.Window(3*time.Second, 6*time.Second)
	if w.Len() != 3 {
		t.Fatalf("window length = %d", w.Len())
	}
	if w.Points[0].V != 3 || w.Points[2].V != 5 {
		t.Fatalf("window values = %v", w.Values())
	}
}

func TestSeriesPerSecond(t *testing.T) {
	s := NewSeries("frames")
	for i := 0; i < 90; i++ {
		s.Add(time.Duration(i)*33*time.Millisecond, 1)
	}
	buckets := s.PerSecond(3)
	total := buckets[0] + buckets[1] + buckets[2]
	if total != 90 {
		t.Fatalf("buckets = %v, total %d", buckets, total)
	}
	// ~30 per second.
	for i, n := range buckets {
		if n < 29 || n > 32 {
			t.Fatalf("bucket[%d] = %d", i, n)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 1", "Case", "% Delivered", "Latency")
	tb.AddRow("No Adaptation", "0.8%", "324.0 ms")
	tb.AddRow("Full Reservation", "100.0%", "190.0 ms")
	out := tb.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "No Adaptation") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, headers, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// All data lines align: same column start for second column.
	idx := strings.Index(lines[1], "% Delivered")
	for _, ln := range lines[3:] {
		if len(ln) < idx {
			t.Fatalf("short row %q", ln)
		}
	}
}

func TestTableRowTruncation(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("1", "2", "3", "4")
	if len(tb.Rows[0]) != 2 {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatDuration(1500 * time.Microsecond); got != "1.5 ms" {
		t.Fatalf("FormatDuration = %q", got)
	}
	if got := FormatPercent(0.835); got != "83.5%" {
		t.Fatalf("FormatPercent = %q", got)
	}
}

// Property: min <= p50 <= p95 <= p99 <= max and min <= mean <= max.
func TestSummaryInvariants(t *testing.T) {
	prop := func(vs []float64) bool {
		clean := vs[:0]
		for _, v := range vs {
			// Keep magnitudes sane so sums cannot overflow to Inf.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		const eps = 1e-9
		return s.Min <= s.P50+eps && s.P50 <= s.P95+eps && s.P95 <= s.P99+eps &&
			s.P99 <= s.Max+eps && s.Min <= s.Mean+eps && s.Mean <= s.Max+eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := NewTable("x", "Case", "Value")
	tb.AddRow("plain", "1")
	tb.AddRow(`with "quotes", and comma`, "2")
	out := tb.RenderCSV()
	want := "Case,Value\nplain,1\n\"with \"\"quotes\"\", and comma\",2\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := NewSeries("latency")
	s.Add(time.Second, 0.5)
	s.Add(2*time.Second, 1.25)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "t_seconds,latency\n1.000000,0.5\n2.000000,1.25\n"
	if b.String() != want {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestASCIIPlot(t *testing.T) {
	s := NewSeries("lat")
	for i := 0; i < 50; i++ {
		v := 0.001
		if i >= 20 && i < 30 {
			v = 1.0 // a congestion plateau
		}
		s.Add(time.Duration(i)*time.Second, v)
	}
	out := ASCIIPlot(s, 50, 8)
	if !strings.Contains(out, "lat") || !strings.Contains(out, "*") {
		t.Fatalf("plot:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Header + 8 rows + axis + footer.
	if len(lines) < 11 {
		t.Fatalf("plot too short:\n%s", out)
	}
	// The plateau puts stars on the top row; the baseline on the bottom.
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("no stars on top row:\n%s", out)
	}
	if !strings.Contains(lines[8], "*") {
		t.Fatalf("no stars on bottom row:\n%s", out)
	}
	if got := ASCIIPlot(NewSeries("empty"), 40, 8); !strings.Contains(got, "no data") {
		t.Fatalf("empty plot: %q", got)
	}
}

// Regression for the percentile truncation bug: int(q*(n-1)) floored the
// rank, so e.g. P50 of [1 2 3 4] came out as 2 instead of 2.5 and every
// percentile was biased low by up to one whole sample on small n.
func TestPercentilesInterpolate(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.P50 != 2.5 {
		t.Fatalf("P50 = %v, want 2.5", s.P50)
	}
	if want := 1 + 0.95*3; math.Abs(s.P95-want) > 1e-12 {
		t.Fatalf("P95 = %v, want %v", s.P95, want)
	}
	if want := 1 + 0.99*3; math.Abs(s.P99-want) > 1e-12 {
		t.Fatalf("P99 = %v, want %v", s.P99, want)
	}

	// Exact ranks still land on the order statistic itself.
	odd := Summarize([]float64{10, 20, 30})
	if odd.P50 != 20 {
		t.Fatalf("odd P50 = %v, want 20", odd.P50)
	}
	// Degenerate inputs.
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P95 != 7 || one.P99 != 7 {
		t.Fatalf("single-sample percentiles = %+v", one)
	}
}
