// Command qosmon runs the monitoring-plane scenario and renders its
// dashboard: the sampled client round-trip time series (the per-window
// view the paper's Figures 4-7 plot), the per-layer critical-path
// latency breakdown of an exemplar invocation, the QuO contract's
// region timeline, and the unified event timeline merging region
// transitions, alert rule firings, breaker activity, and failovers.
//
// Every region transition in the scenario is driven by a MEASURED
// condition: the application records round-trips into a telemetry
// histogram, the sampler turns the histogram into windows, and the
// contract's system conditions read the sampled series — the paper's
// system-condition-object loop closed through the monitoring plane.
//
// Usage:
//
//	qosmon [-seed N] [-dur D] [-prom] [-http ADDR]
//	qosmon -attach ADDR [-follow D]
//
// -prom appends the full Prometheus text exposition of the telemetry
// registry; -http serves it (plus /debug/pprof) after the run. Output
// is deterministic: repeated runs with the same flags are
// byte-identical.
//
// -attach switches qosmon from simulation to live mode: it connects to
// a running process's observability endpoint (qosserve -metrics or
// qoscall -metrics), dumps the current /debug/qos introspection
// snapshot and the Go runtime gauges from /metrics, then follows the
// /events NDJSON stream for -follow, rendering each record as a
// timeline line.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/trace/telemetry"
)

type options struct {
	seed int64
	dur  time.Duration
	prom bool
}

// run executes the scenario and returns the full dashboard as a string
// plus the populated telemetry registry (for -http serving).
func run(opt options) (string, *telemetry.Registry) {
	r := experiments.RunMonitor(experiments.Options{Seed: opt.seed, Duration: opt.dur})
	end := sim.Time(r.Duration) + sim.Time(r.Every)

	out := fmt.Sprintf("qosmon: live QoS monitoring plane (seed %d, %v virtual, sampling every %v)\n",
		opt.seed, r.Duration, r.Every)
	out += fmt.Sprintf("flood: raw best-effort datagrams in [%v, %v) against the server's 8 Mb/s access link\n\n",
		r.LoadStart, r.LoadEnd)

	out += r.RTT.RenderTable("Sampled client RTT (app.rtt_ms windows, ms)").Render()
	out += fmt.Sprintf("p95 per window: %s\n\n", r.RTT.Sparkline(monitor.StatP95))

	tb := metrics.NewTable(fmt.Sprintf("Critical-path latency breakdown (exemplar trace %d)", r.ExemplarTrace),
		"Layer", "Time", "Share")
	var sum time.Duration
	for _, sh := range r.Breakdown {
		sum += time.Duration(sh.Time)
		tb.AddRow(sh.Layer, time.Duration(sh.Time).String(),
			fmt.Sprintf("%.1f%%", 100*time.Duration(sh.Time).Seconds()/time.Duration(r.BreakdownTotal).Seconds()))
	}
	out += tb.Render()
	out += fmt.Sprintf("layer sum = %v, end-to-end = %v\n\n", sum, time.Duration(r.BreakdownTotal))

	out += "contract region timeline (every transition measurement-driven):\n"
	for _, s := range r.Regions {
		out += fmt.Sprintf("%12v  %-10s %v\n", time.Duration(s.Start), s.Region, s.DurationAt(end))
	}
	out += "\nunified event timeline (region / alert / breaker / failover):\n"
	out += r.Timeline.Render(events.KindRegion, events.KindAlert, events.KindBreaker, events.KindFailover)
	out += "\nevent counts by kind:\n"
	out += r.Timeline.RenderCounts()

	out += "\nclosed-loop summary:\n"
	out += fmt.Sprintf("  client invocations             %d sent, %d ok, %d deadline-expired, %d failed\n",
		r.Sent, r.OK, r.Deadline, r.Failed)
	out += fmt.Sprintf("  flood offered                  %d datagrams\n", r.BulkOffer)
	out += fmt.Sprintf("  qosket actions                 %d escalation(s) to the EF band, %d de-escalation(s)\n",
		r.Escalate, r.Deescalate)
	for _, reg := range []string{"normal", "degraded", "protected"} {
		out += fmt.Sprintf("  time in %-22s %v\n", reg, r.TimeIn[reg])
	}
	driven := "NO"
	if r.Escalate > 0 && r.Transitions >= 3 {
		driven = "yes"
	}
	out += fmt.Sprintf("  transitions from sampled data  %s (%d region transitions, conditions read only sampled series)\n",
		driven, r.Transitions)

	if opt.prom {
		out += "\n/metrics exposition:\n"
		out += monitor.RenderProm(r.Reg)
	}
	return out, r.Reg
}

// attach renders a live dashboard from a running process's
// observability endpoint: the /debug/qos snapshot, the Go runtime
// gauges, and the /events stream followed for the given duration.
func attach(w io.Writer, addr string, follow time.Duration) error {
	base := "http://" + addr
	fmt.Fprintf(w, "qosmon: attached to %s\n\n", addr)

	resp, err := http.Get(base + "/debug/qos")
	if err != nil {
		return fmt.Errorf("GET /debug/qos: %w", err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("read /debug/qos: %w", err)
	}
	fmt.Fprintf(w, "live QoS state (/debug/qos):\n%s\n", strings.TrimRight(string(snap), "\n"))

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("GET /metrics: %w", err)
	}
	var goLines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "go_") {
			goLines = append(goLines, line)
		}
	}
	resp.Body.Close()
	sort.Strings(goLines)
	fmt.Fprintf(w, "\nGo runtime (/metrics, go_*):\n")
	for _, l := range goLines {
		fmt.Fprintf(w, "  %s\n", l)
	}

	if follow <= 0 {
		return nil
	}
	// The stream is followed through server restarts: an early EOF or
	// read error triggers a reconnect with capped doubling backoff
	// (reset after any successful read) until the follow window closes.
	fmt.Fprintf(w, "\nevent stream (/events, following for %v):\n", follow)
	deadline := time.Now().Add(follow)
	const baseBackoff, maxBackoff = 250 * time.Millisecond, 2 * time.Second
	backoff := baseBackoff
	seen, reconnects := 0, 0
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			break
		}
		n, err := followEvents(w, base, remain)
		seen += n
		if n > 0 {
			backoff = baseBackoff
		}
		if time.Until(deadline) <= 0 {
			break
		}
		reconnects++
		if err != nil {
			fmt.Fprintf(w, "  (stream lost: %v; reconnecting in %v)\n", err, backoff)
		} else {
			fmt.Fprintf(w, "  (stream closed; reconnecting in %v)\n", backoff)
		}
		sleep := backoff
		if d := time.Until(deadline); sleep > d {
			sleep = d
		}
		time.Sleep(sleep)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
	fmt.Fprintf(w, "qosmon: %d event(s), %d reconnect(s) in %v\n", seen, reconnects, follow)
	return nil
}

// followEvents makes one /events connection and renders records until
// the stream ends or the remaining follow window expires. It returns
// how many records it saw; err is the connection-level failure, if any
// (a deadline-triggered close also surfaces as a read error — the
// caller distinguishes by checking the clock).
func followEvents(w io.Writer, base string, remain time.Duration) (int, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/events", nil)
	if err != nil {
		return 0, err
	}
	resp, err := (&http.Client{Timeout: 0}).Do(req)
	if err != nil {
		return 0, fmt.Errorf("GET /events: %w", err)
	}
	defer resp.Body.Close()
	cut := time.AfterFunc(remain, func() { resp.Body.Close() })
	defer cut.Stop()
	seen := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec monitor.RecordJSON
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		fields := make([]string, 0, len(rec.Fields))
		for k, v := range rec.Fields {
			fields = append(fields, k+"="+v)
		}
		sort.Strings(fields)
		ts := rec.Wall
		if t, terr := time.Parse(time.RFC3339Nano, rec.Wall); terr == nil {
			ts = t.Local().Format("15:04:05.000")
		}
		fmt.Fprintf(w, "  %s  %-9s %-12s %s\n", ts, rec.Kind, rec.Source, strings.Join(fields, " "))
		seen++
	}
	return seen, sc.Err()
}

func main() {
	opt := options{}
	httpAddr := flag.String("http", "", "serve /metrics and /debug/pprof on this address after the run")
	attachAddr := flag.String("attach", "", "attach to a live observability endpoint (host:port) instead of simulating")
	follow := flag.Duration("follow", 5*time.Second, "how long -attach follows the /events stream (0 = snapshot only)")
	flag.Int64Var(&opt.seed, "seed", 42, "simulation seed")
	flag.DurationVar(&opt.dur, "dur", 0, "virtual duration (0 = default 12s; flood in the middle third)")
	flag.BoolVar(&opt.prom, "prom", false, "append the Prometheus text exposition of the registry")
	flag.Parse()

	if *attachAddr != "" {
		if err := attach(os.Stdout, *attachAddr, *follow); err != nil {
			fmt.Fprintln(os.Stderr, "qosmon:", err)
			os.Exit(1)
		}
		return
	}

	out, reg := run(opt)
	fmt.Print(out)

	if *httpAddr != "" {
		fmt.Fprintf(os.Stderr, "qosmon: serving /metrics and /debug/pprof on %s\n", *httpAddr)
		if err := http.ListenAndServe(*httpAddr, monitor.NewMux(reg)); err != nil {
			fmt.Fprintln(os.Stderr, "qosmon:", err)
			os.Exit(1)
		}
	}
}
