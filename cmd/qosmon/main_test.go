package main

import (
	"strings"
	"testing"
)

// TestRunByteIdentical pins the acceptance criteria: repeated runs with
// the same seed produce byte-identical dashboards including the
// per-layer latency breakdown table, and the QuO contract performs at
// least one region transition triggered by a sampled condition (the
// closed monitoring loop), never by a hand-set probe.
func TestRunByteIdentical(t *testing.T) {
	opt := options{seed: 42, prom: true}
	a, rega := run(opt)
	b, regb := run(opt)
	if a != b {
		t.Fatalf("repeated runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if rega == nil || regb == nil {
		t.Fatal("run returned no registry")
	}
	if !strings.Contains(a, "Critical-path latency breakdown") {
		t.Errorf("dashboard missing per-layer breakdown table:\n%s", a)
	}
	if !strings.Contains(a, "from=normal to=degraded") {
		t.Errorf("no measurement-driven region transition on the timeline:\n%s", a)
	}
	if !strings.Contains(a, "transitions from sampled data  yes") {
		t.Errorf("closed-loop acceptance line not satisfied:\n%s", a)
	}
	if !strings.Contains(a, "state=firing") || !strings.Contains(a, "state=resolved") {
		t.Errorf("alert rules did not both fire and resolve:\n%s", a)
	}
	if !strings.Contains(a, "/metrics exposition:\n# TYPE") {
		t.Errorf("-prom did not append the exposition:\n%s", a)
	}
}
