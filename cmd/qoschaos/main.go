// qoschaos is the standalone chaos TCP proxy: put it between qoscall
// and qosserve (or any GIOP speaker) and play a scripted fault schedule
// against the connection — added latency, bandwidth throttling,
// fragmented writes, header corruption, RSTs, half-open blackholes, and
// endpoint kill/restart windows.
//
//	qosserve -addr 127.0.0.1:7316 &
//	qoschaos -listen 127.0.0.1:7399 -target 127.0.0.1:7316 \
//	         -schedule latency:1s:2s:40ms,kill:4s:1s,blackhole:6s:500ms
//	qoscall  -addr 127.0.0.1:7399,127.0.0.1:7316 -failover -duration 8s
//
// Each schedule entry is kind:at:duration[:param] — at and duration are
// Go durations relative to startup; param is the latency (latency), the
// bytes/second cap (throttle), the max write size (partial), or the
// per-chunk probability (corrupt). rst takes only at. Fault boundaries
// are logged as they fire; the proxy runs until the schedule ends (plus
// -linger) or indefinitely with -serve.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/events"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7399", "proxy listen address")
	target := flag.String("target", "127.0.0.1:7316", "upstream endpoint to torture")
	schedule := flag.String("schedule", "", "comma-separated fault script: kind:at:duration[:param]")
	seed := flag.Int64("seed", 42, "corruption stream seed")
	serve := flag.Bool("serve", false, "keep proxying after the schedule ends (until interrupted)")
	linger := flag.Duration("linger", time.Second, "extra proxy time after the last scheduled fault")
	flag.Parse()

	faults, err := parseSchedule(*schedule)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoschaos: %v\n", err)
		os.Exit(2)
	}

	bus := events.NewBus(nil)
	bus.Subscribe(func(r events.Record) { fmt.Println(r.String()) }, events.KindChaos)
	p, err := chaos.New(chaos.Config{
		Listen:   *listen,
		Target:   *target,
		Schedule: faults,
		Seed:     *seed,
		Bus:      bus,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoschaos: %v\n", err)
		os.Exit(1)
	}
	if err := p.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "qoschaos: %v\n", err)
		os.Exit(1)
	}
	defer p.Close()
	fmt.Printf("qoschaos: %s -> %s, %d scheduled fault(s), seed %d\n",
		p.Addr(), *target, len(faults), *seed)

	if *serve {
		select {} // proxy until killed
	}
	end := *linger
	for _, f := range faults {
		if t := f.At + f.Duration + *linger; t > end {
			end = t
		}
	}
	time.Sleep(end)
	fmt.Println("qoschaos: schedule complete")
}

// parseSchedule turns "kind:at:duration[:param],..." into faults.
func parseSchedule(s string) ([]chaos.Fault, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []chaos.Fault
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("schedule entry %q: want kind:at:duration[:param]", entry)
		}
		f := chaos.Fault{Kind: chaos.FaultKind(parts[0])}
		at, err := time.ParseDuration(parts[1])
		if err != nil {
			return nil, fmt.Errorf("schedule entry %q: at: %v", entry, err)
		}
		f.At = at
		if len(parts) > 2 {
			d, err := time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("schedule entry %q: duration: %v", entry, err)
			}
			f.Duration = d
		}
		param := ""
		if len(parts) > 3 {
			param = parts[3]
		}
		switch f.Kind {
		case chaos.FaultLatency:
			if param == "" {
				return nil, fmt.Errorf("schedule entry %q: latency needs a duration param", entry)
			}
			if f.Latency, err = time.ParseDuration(param); err != nil {
				return nil, fmt.Errorf("schedule entry %q: latency: %v", entry, err)
			}
		case chaos.FaultThrottle:
			if f.Bps, err = strconv.Atoi(param); err != nil || f.Bps <= 0 {
				return nil, fmt.Errorf("schedule entry %q: throttle needs a positive bytes/sec param", entry)
			}
		case chaos.FaultPartial:
			if param != "" {
				if f.Chunk, err = strconv.Atoi(param); err != nil {
					return nil, fmt.Errorf("schedule entry %q: partial: %v", entry, err)
				}
			}
		case chaos.FaultCorrupt:
			if param != "" {
				if f.Prob, err = strconv.ParseFloat(param, 64); err != nil {
					return nil, fmt.Errorf("schedule entry %q: corrupt: %v", entry, err)
				}
			}
		case chaos.FaultRST, chaos.FaultBlackhole, chaos.FaultKill:
			// no param
		default:
			return nil, fmt.Errorf("schedule entry %q: unknown fault kind %q", entry, parts[0])
		}
		out = append(out, f)
	}
	return out, nil
}
