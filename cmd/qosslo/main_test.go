package main

import (
	"regexp"
	"strings"
	"testing"
)

// TestRunByteIdentical pins the PR's acceptance criteria: repeated
// same-seed runs produce byte-identical reports; the burn rate fires
// before the raw-p95 rule; the contract escalates on burn; every
// deadline-missed invocation has a kept trace whose critical path names
// a guilty layer; and the kept-trace rate lands on the head budget.
func TestRunByteIdentical(t *testing.T) {
	opt := options{seed: 42, allEvents: true}
	a, b := run(opt), run(opt)
	if a != b {
		t.Fatalf("repeated runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}

	if !strings.Contains(a, "winner: burn rate, by ") {
		t.Errorf("burn rate did not beat the p95 threshold rule:\n%s", a)
	}
	if !strings.Contains(a, "from=normal to=burning") {
		t.Errorf("contract never entered the burning region:\n%s", a)
	}
	if !strings.Contains(a, "escalation(s) to the EF band") || strings.Contains(a, "0 escalation(s)") {
		t.Errorf("no burn-driven escalation:\n%s", a)
	}

	// Every deadline miss must have survived sampling with a named
	// guilty layer.
	m := regexp.MustCompile(`deadline-miss audit: (\d+) missed invocations, (\d+) with a kept trace`).FindStringSubmatch(a)
	if m == nil {
		t.Fatalf("audit line missing:\n%s", a)
	}
	if m[1] == "0" || m[1] != m[2] {
		t.Errorf("sampler lost deadline-missed traces: %s missed, %s kept", m[1], m[2])
	}
	if !strings.Contains(a, "critical path of trace") {
		t.Errorf("no critical path rendered for the slowest kept miss:\n%s", a)
	}
	if !strings.Contains(a, "slo_burn") || !strings.Contains(a, "state=resolved") {
		t.Errorf("slo_burn transitions missing from the timeline:\n%s", a)
	}
}
