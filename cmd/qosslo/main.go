// Command qosslo runs the SLO scenario and renders the causal-latency
// attribution report: the multi-window burn-rate state of the latency
// objective, the head-to-head race between burn-rate alerting and a raw
// p95 threshold rule under a best-effort flood, the QuO contract's
// burn-driven escalation timeline, the tail-based sampler's kept-trace
// economics, and — for the slowest deadline-missed invocation the
// sampler kept — the critical path naming the layer that ate the
// budget.
//
// Usage:
//
//	qosslo [-seed N] [-dur D] [-events]
//
// -events appends the full unified event timeline. Output is
// deterministic: repeated runs with the same flags are byte-identical.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

type options struct {
	seed      int64
	dur       time.Duration
	allEvents bool
}

// run executes the scenario and returns the full report as a string.
func run(opt options) string {
	r := experiments.RunSLO(experiments.Options{Seed: opt.seed, Duration: opt.dur})
	end := r.Duration + r.Every

	out := fmt.Sprintf("qosslo: burn-rate SLO plane + tail-based trace sampling (seed %d, %v virtual)\n",
		opt.seed, r.Duration)
	out += fmt.Sprintf("flood: best-effort datagrams in [%v, %v) against the server's 8 Mb/s access link\n\n",
		r.LoadStart, r.LoadEnd)

	obj := r.SLO.Objective()
	out += fmt.Sprintf("objective: %.3g%% of invocations within %v (budget %.3g%%)\n",
		100*obj.Goal, obj.LatencyBound, 100*(1-obj.Goal))
	out += r.SLO.Render() + "\n"

	out += "alerting head-to-head (same 30ms boundary, flood begins at " + r.LoadStart.String() + "):\n"
	if r.BurnFired {
		out += fmt.Sprintf("  burn-rate fast pair fired   %12v  (+%v after flood onset)\n",
			r.BurnFiredAt, r.BurnFiredAt-r.LoadStart)
	} else {
		out += "  burn-rate fast pair fired   never\n"
	}
	if r.AlertFired {
		out += fmt.Sprintf("  p95 rule (For=2) fired      %12v  (+%v after flood onset)\n",
			r.AlertFiredAt, r.AlertFiredAt-r.LoadStart)
	} else {
		out += "  p95 rule (For=2) fired      never\n"
	}
	if r.BurnFired && (!r.AlertFired || r.BurnFiredAt < r.AlertFiredAt) {
		lead := "unbounded"
		if r.AlertFired {
			lead = (r.AlertFiredAt - r.BurnFiredAt).String()
		}
		out += fmt.Sprintf("  winner: burn rate, by %s\n", lead)
	}
	out += "\n"

	out += "contract region timeline (conditions read the SLO burn, not raw latency):\n"
	for _, s := range r.Regions {
		out += fmt.Sprintf("%12v  %-10s %v\n", time.Duration(s.Start), s.Region, s.DurationAt(end))
	}
	out += "\n"

	st := r.Sampling
	tb := metrics.NewTable("Tail-based sampling verdicts", "Verdict", "Traces")
	tb.AddRow("keep:error", fmt.Sprint(st.KeepError))
	tb.AddRow("keep:tail", fmt.Sprint(st.KeepTail))
	tb.AddRow("keep:head", fmt.Sprint(st.KeepHead))
	tb.AddRow("drop", fmt.Sprint(st.Dropped))
	tb.AddRow("total", fmt.Sprint(st.Traces))
	out += tb.Render()
	out += fmt.Sprintf("kept %d of %d traces (%.1f/s against a %g/s head budget), %d resurrected by late spans\n",
		st.Kept, st.Traces, r.KeptPerSec, experiments.SLOHeadBudget, st.Resurrected)
	out += fmt.Sprintf("spans stored %d, spans discarded %d\n\n", st.SpansKept, st.SpansDropped)

	out += fmt.Sprintf("deadline-miss audit: %d missed invocations, %d with a kept trace\n", r.MissTotal, r.MissKept)
	out += "critical-path guilty layer across kept misses:\n"
	for _, layer := range []string{"netsim", "poa", "orb", "rtcorba", "overload", "app"} {
		if n := r.Guilty[layer]; n > 0 {
			out += fmt.Sprintf("  %-10s %d\n", layer, n)
		}
	}
	if r.WorstMiss != 0 {
		out += fmt.Sprintf("\nslowest kept miss (trace %d) critical path:\n", r.WorstMiss)
		out += r.Kept.RenderCriticalPath(r.WorstMiss)
	}

	out += "\nslo_burn / alert / region timeline:\n"
	out += r.Timeline.Render(events.KindSLOBurn, events.KindAlert, events.KindRegion)
	out += "\nevent counts by kind:\n"
	out += r.Timeline.RenderCounts()

	out += "\nclosed-loop summary:\n"
	out += fmt.Sprintf("  client invocations   %d sent, %d ok, %d deadline-expired, %d failed\n",
		r.Sent, r.OK, r.Deadline, r.Failed)
	out += fmt.Sprintf("  flood offered        %d datagrams\n", r.BulkOffer)
	out += fmt.Sprintf("  qosket actions       %d escalation(s) to the EF band, %d de-escalation(s)\n",
		r.Escalate, r.Deescalate)
	for _, reg := range []string{"normal", "burning", "protected"} {
		out += fmt.Sprintf("  time in %-12s %v\n", reg, r.TimeIn[reg])
	}

	if opt.allEvents {
		out += "\nfull event timeline:\n"
		out += r.Timeline.Render()
	}
	return out
}

func main() {
	opt := options{}
	flag.Int64Var(&opt.seed, "seed", 42, "simulation seed")
	flag.DurationVar(&opt.dur, "dur", 0, "virtual duration (0 = default 12s; flood in the middle third)")
	flag.BoolVar(&opt.allEvents, "events", false, "append the full unified event timeline")
	flag.Parse()
	fmt.Print(run(opt))
}
