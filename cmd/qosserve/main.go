// qosserve is the real-socket QoS server: a wire.Server on actual TCP
// with an expedited and a best-effort priority lane, an echo servant
// and a media-frame servant, and an optional live observability plane.
// It is the process qoscall generates load against — the wall-clock
// counterpart of the simulated experiments.
//
//	qosserve -addr 127.0.0.1:7316 -metrics 127.0.0.1:9316
//	qoscall  -addr 127.0.0.1:7316 -duration 5s
//	qosmon   -attach 127.0.0.1:9316
//
// With -metrics set, the process serves Prometheus exposition plus Go
// runtime metrics on /metrics, live per-lane/SLO introspection as JSON
// on /debug/qos, an NDJSON event stream on /events, and pprof under
// /debug/pprof/. With -profile-dir set, a bounded on-disk ring of
// pprof captures is maintained: periodic heap snapshots plus a CPU
// profile captured automatically whenever an alert rule or SLO burn
// starts firing.
//
// The servant pair mirrors the repo's simulated workloads: app/echo
// returns the request body after -service worth of work (the imager
// shape), app/media returns a -frame-size byte frame (the AV-streams
// shape), so EF/BE tail separation measured here is directly comparable
// to the virtual-time figures. A real-time event channel is hosted at
// pubsub/chan for qospub: publishes are admission-controlled, fan-out
// rides the priority bands, and a firing alert or SLO burn degrades
// best-effort subscribers until it resolves.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/events"
	"repro/internal/monitor"
	"repro/internal/pubsub"
	"repro/internal/slo"
	"repro/internal/trace/telemetry"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7316", "TCP listen address")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/qos, /events and /debug/pprof on this address (empty = off)")
	efWorkers := flag.Int("ef-workers", 2, "workers in the expedited lane")
	beWorkers := flag.Int("be-workers", 1, "workers in the best-effort lane")
	queue := flag.Int("queue", 256, "per-lane queue limit (full lanes shed with TRANSIENT)")
	service := flag.Duration("service", time.Millisecond, "simulated per-request service time")
	frameSize := flag.Int("frame-size", 32<<10, "app/media reply frame size in bytes")
	sampleEvery := flag.Duration("sample-every", time.Second, "monitor sampler window length")
	sloBound := flag.Duration("slo-bound", 250*time.Millisecond, "EF latency bound for the ef_latency SLO")
	alertQueueMS := flag.Float64("alert-queue-ms", 50, "fire ef_queue_hot when EF p99 queueing exceeds this many ms")
	profileDir := flag.String("profile-dir", "", "capture pprof profiles into this directory (empty = off)")
	profileEvery := flag.Duration("profile-every", time.Minute, "periodic heap-capture interval when -profile-dir is set")
	flag.Parse()

	reg := telemetry.NewRegistry()
	tracer := wire.NewTracer()
	bus := events.NewWallBus(tracer.Elapsed)
	srv, err := wire.NewServer(wire.ServerConfig{
		Lanes: []wire.LaneConfig{
			{Priority: 0, Workers: *beWorkers, QueueLimit: *queue},
			{Priority: wire.EFPriority, Workers: *efWorkers, QueueLimit: *queue},
		},
		Registry: reg,
		Tracer:   tracer,
		Bus:      bus,
		Name:     "qosserve",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qosserve: %v\n", err)
		os.Exit(1)
	}

	// The ef_latency SLO is fed from the servant side: every expedited
	// request's service time counts against the objective.
	st := slo.NewWallTracker(slo.Objective{
		Name:         "ef_latency",
		Goal:         0.999,
		LatencyBound: *sloBound,
		Pairs:        slo.ScaledPairs(10 * time.Minute),
	}, bus, tracer.Elapsed)

	observed := func(h wire.Handler) wire.Handler {
		return wire.HandlerFunc(func(req *wire.Request) ([]byte, error) {
			start := time.Now()
			body, err := h.Dispatch(req)
			if req.Priority >= wire.EFPriority {
				if err != nil {
					st.Observe(false)
				} else {
					st.ObserveLatency(time.Since(start))
				}
			}
			return body, err
		})
	}

	work := *service
	srv.Register("app/echo", observed(wire.HandlerFunc(func(req *wire.Request) ([]byte, error) {
		time.Sleep(work)
		return req.Body, nil
	})))
	frame := make([]byte, *frameSize)
	for i := range frame {
		frame[i] = byte(i)
	}
	srv.Register("app/media", observed(wire.HandlerFunc(func(req *wire.Request) ([]byte, error) {
		time.Sleep(work)
		return frame, nil
	})))

	// The process also hosts a real-time event channel at pubsub/chan:
	// qospub publishes and subscribes against it over the same banded
	// TCP plane. Drops and lag surface on the event bus, and a firing
	// alert or SLO burn degrades best-effort fan-out until it resolves.
	ch := pubsub.New(pubsub.ChannelConfig{
		Name: "qosserve", Now: tracer.Elapsed, Async: true,
		Registry: reg, Tracer: tracer,
	})
	defer ch.Close()
	chanHost, err := wire.NewChannelHost(ch, wire.ChannelHostConfig{Tracer: tracer})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qosserve: channel host: %v\n", err)
		os.Exit(1)
	}
	defer chanHost.Close()
	srv.Register("pubsub/chan", chanHost)
	monitor.WirePubSub(bus, ch)
	degrade := monitor.DegradePubSubOnBurn(bus, ch)
	defer degrade.Cancel()

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qosserve: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("qosserve: listening on %s (EF lane floor %d: %d workers; BE lane: %d workers; queue %d)\n",
		bound, wire.EFPriority, *efWorkers, *beWorkers, *queue)

	// Wall-clock sampler: closes telemetry windows, feeds alert rules,
	// and polls the Go runtime (goroutines, heap, GC pauses, scheduling
	// latency) into the same registry the exposition endpoint serves.
	sampler := monitor.NewWallSampler(reg, bus, *sampleEvery, tracer.Elapsed)
	sampler.AddCollector(monitor.NewRuntimeCollector(reg).Collect)
	sampler.AddRule(&monitor.Rule{
		Name:      "ef_queue_hot",
		Series:    "wire.server.queue_ms{lane=" + strconv.Itoa(int(wire.EFPriority)) + "}.window",
		Stat:      monitor.StatP99,
		Op:        monitor.Above,
		Threshold: *alertQueueMS,
		For:       3,
	})
	sampler.Start()
	defer sampler.Stop()
	st.Start(*sampleEvery)
	defer st.Stop()

	if *profileDir != "" {
		prof, perr := monitor.NewProfiler(monitor.ProfilerConfig{
			Dir:      *profileDir,
			Every:    *profileEvery,
			Bus:      bus,
			Registry: reg,
		})
		if perr != nil {
			fmt.Fprintf(os.Stderr, "qosserve: profiler: %v\n", perr)
			os.Exit(1)
		}
		prof.Start()
		defer prof.Stop()
		fmt.Printf("qosserve: profiling to %s (periodic heap every %v, CPU on alert)\n", *profileDir, *profileEvery)
	}

	if *metricsAddr != "" {
		ix := monitor.NewIntrospector()
		ix.Add("server", func() any { return srv.Snapshot() })
		ix.Add("slo", func() any { return st.Snapshot() })
		ix.Add("pubsub", func() any { return ch.Snapshot() })
		maddr, stop, err := monitor.StartHTTP(*metricsAddr, reg,
			monitor.WithIntrospect(ix), monitor.WithEvents(bus))
		if err != nil {
			fmt.Fprintf(os.Stderr, "qosserve: metrics: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("qosserve: metrics on http://%s/metrics (introspection /debug/qos, events /events, pprof /debug/pprof/)\n", maddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("qosserve: draining...")
	srv.Shutdown(5 * time.Second)
	fmt.Printf("qosserve: done; accepted %g connections, %d spans collected\n",
		reg.Counter("wire.server.accepts").Value(), tracer.Len())
}
