// qosserve is the real-socket QoS server: a wire.Server on actual TCP
// with an expedited and a best-effort priority lane, an echo servant
// and a media-frame servant, and an optional live /metrics + pprof
// endpoint. It is the process qoscall generates load against — the
// wall-clock counterpart of the simulated experiments.
//
//	qosserve -addr 127.0.0.1:7316 -metrics 127.0.0.1:9316
//	qoscall  -addr 127.0.0.1:7316 -duration 5s
//
// The servant pair mirrors the repo's simulated workloads: app/echo
// returns the request body after -service worth of work (the imager
// shape), app/media returns a -frame-size byte frame (the AV-streams
// shape), so EF/BE tail separation measured here is directly comparable
// to the virtual-time figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/monitor"
	"repro/internal/trace/telemetry"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7316", "TCP listen address")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (empty = off)")
	efWorkers := flag.Int("ef-workers", 2, "workers in the expedited lane")
	beWorkers := flag.Int("be-workers", 1, "workers in the best-effort lane")
	queue := flag.Int("queue", 256, "per-lane queue limit (full lanes shed with TRANSIENT)")
	service := flag.Duration("service", time.Millisecond, "simulated per-request service time")
	frameSize := flag.Int("frame-size", 32<<10, "app/media reply frame size in bytes")
	flag.Parse()

	reg := telemetry.NewRegistry()
	tracer := wire.NewTracer()
	srv, err := wire.NewServer(wire.ServerConfig{
		Lanes: []wire.LaneConfig{
			{Priority: 0, Workers: *beWorkers, QueueLimit: *queue},
			{Priority: wire.EFPriority, Workers: *efWorkers, QueueLimit: *queue},
		},
		Registry: reg,
		Tracer:   tracer,
		Name:     "qosserve",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qosserve: %v\n", err)
		os.Exit(1)
	}

	work := *service
	srv.Register("app/echo", wire.HandlerFunc(func(req *wire.Request) ([]byte, error) {
		time.Sleep(work)
		return req.Body, nil
	}))
	frame := make([]byte, *frameSize)
	for i := range frame {
		frame[i] = byte(i)
	}
	srv.Register("app/media", wire.HandlerFunc(func(req *wire.Request) ([]byte, error) {
		time.Sleep(work)
		return frame, nil
	}))

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qosserve: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("qosserve: listening on %s (EF lane floor %d: %d workers; BE lane: %d workers; queue %d)\n",
		bound, wire.EFPriority, *efWorkers, *beWorkers, *queue)

	if *metricsAddr != "" {
		maddr, stop, err := monitor.StartHTTP(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qosserve: metrics: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("qosserve: metrics on http://%s/metrics (pprof under /debug/pprof/)\n", maddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("qosserve: draining...")
	srv.Shutdown(5 * time.Second)
	fmt.Printf("qosserve: done; accepted %g connections, %d spans collected\n",
		reg.Counter("wire.server.accepts").Value(), tracer.Len())
}
