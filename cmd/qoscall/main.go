// qoscall is the wall-clock load generator for qosserve: open-loop
// mixed expedited/best-effort GIOP traffic over real TCP, with private
// banded connections per class, reporting wall-clock p50/p95/p99 and
// throughput per class plus an error breakdown.
//
//	qosserve -addr 127.0.0.1:7316 &
//	qoscall  -addr 127.0.0.1:7316 -duration 5s -ef-hz 200 -be-hz 1200
//
// The expedited class rides CORBA priority 16000 (qosserve's EF lane
// floor) on its own connection band; best-effort rides priority 0. With
// -be-hz above the BE lane's service capacity the BE class saturates —
// queueing delay plus TRANSIENT sheds — while EF latency should hold
// its no-load shape. That contrast is the point of the tool.
//
// With -failover, -addr becomes an ordered comma-separated endpoint
// set (primary first) driven through a fault-tolerant group client:
// per-endpoint circuit breakers, heartbeat health probes, a shared
// retry budget, and FT-context-stamped at-most-once failover. Kill the
// primary mid-run (or front it with qoschaos) and the load keeps
// completing against the alternates:
//
//	qosserve -addr 127.0.0.1:7316 &
//	qosserve -addr 127.0.0.1:7317 &
//	qoscall  -addr 127.0.0.1:7316,127.0.0.1:7317 -failover -duration 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/events"
	"repro/internal/monitor"
	"repro/internal/trace/telemetry"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7316", "qosserve TCP address")
	duration := flag.Duration("duration", 3*time.Second, "load duration")
	efHz := flag.Int("ef-hz", 200, "expedited offered rate (req/s; 0 disables the class)")
	beHz := flag.Int("be-hz", 1200, "best-effort offered rate (req/s; 0 disables the class)")
	payload := flag.Int("payload", 64, "request body bytes")
	op := flag.String("key", "app/echo", "object key to invoke")
	efTimeout := flag.Duration("ef-timeout", 500*time.Millisecond, "EF per-call RELATIVE_RT_TIMEOUT")
	beTimeout := flag.Duration("be-timeout", 5*time.Second, "BE per-call RELATIVE_RT_TIMEOUT")
	connsPerBand := flag.Int("conns", 1, "connections per priority band")
	failover := flag.Bool("failover", false, "treat -addr as a comma-separated endpoint set (primary first) and drive it through the fault-tolerant group client")
	metricsAddr := flag.String("metrics", "", "serve the client-side registry (/metrics, /debug/qos, /events) on this address during the run (empty = off)")
	flag.Parse()

	// With -metrics, the client side gets its own observability plane:
	// banded-pool occupancy, RTT histograms and retry-budget level over
	// the same exposition/introspection endpoints qosserve serves.
	reg := telemetry.NewRegistry()
	var bus *events.Bus
	ix := monitor.NewIntrospector()
	if *metricsAddr != "" {
		bus = events.NewWallBus(nil)
	}

	var cli wire.Invoker
	if *failover {
		endpoints := strings.Split(*addr, ",")
		g, err := wire.NewGroupClient(wire.GroupConfig{
			Endpoints:    endpoints,
			Bands:        []int16{0, wire.EFPriority},
			ConnsPerBand: *connsPerBand,
			Registry:     reg,
			Bus:          bus,
			Name:         "qoscall.group",
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoscall: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			fmt.Printf("failover: primary=%s budget spent=%d denied=%d\n",
				endpoints[g.Primary()], g.Budget().Spent(), g.Budget().Denied())
			g.Close()
		}()
		cli = g
		ix.Add("group", func() any { return g.Snapshot() })
	} else {
		c, err := wire.NewClient(wire.ClientConfig{
			Addr:         *addr,
			Bands:        []int16{0, wire.EFPriority},
			ConnsPerBand: *connsPerBand,
			Registry:     reg,
			Bus:          bus,
			Name:         "qoscall",
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoscall: %v\n", err)
			os.Exit(1)
		}
		defer c.Close()
		cli = c
		ix.Add("client", func() any { return c.Snapshot() })
	}

	if *metricsAddr != "" {
		sampler := monitor.NewWallSampler(reg, bus, time.Second, nil)
		sampler.AddCollector(monitor.NewRuntimeCollector(reg).Collect)
		if *failover {
			// Mirror the retry-budget level into a gauge each window so
			// it shows up on /metrics alongside the snapshot JSON.
			g := cli.(*wire.GroupClient)
			budgetG := reg.Gauge("wire.group.retry_budget_tokens")
			sampler.AddCollector(func() { budgetG.Set(g.Budget().Tokens()) })
		}
		sampler.Start()
		defer sampler.Stop()
		maddr, stop, err := monitor.StartHTTP(*metricsAddr, reg,
			monitor.WithIntrospect(ix), monitor.WithEvents(bus))
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoscall: metrics: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("qoscall: client metrics on http://%s/metrics (introspection /debug/qos, events /events)\n", maddr)
	}

	var classes []wire.LoadClass
	// The echo servant is idempotent, so under -failover ambiguous
	// failures may retry cross-endpoint.
	if *efHz > 0 {
		classes = append(classes, wire.LoadClass{
			Name: "EF", Priority: wire.EFPriority, Hz: *efHz,
			Payload: *payload, Timeout: *efTimeout, Key: *op, Idempotent: *failover,
		})
	}
	if *beHz > 0 {
		classes = append(classes, wire.LoadClass{
			Name: "BE", Priority: 0, Hz: *beHz,
			Payload: *payload, Timeout: *beTimeout, Key: *op, Idempotent: *failover,
		})
	}
	if len(classes) == 0 {
		fmt.Fprintln(os.Stderr, "qoscall: both classes disabled")
		os.Exit(2)
	}

	fmt.Printf("qoscall: %v of open-loop load against %s (EF %d/s @prio %d, BE %d/s @prio 0)\n",
		*duration, *addr, *efHz, wire.EFPriority, *beHz)
	reports := wire.RunLoad(cli, *duration, classes)
	fmt.Print(wire.RenderReports(reports))

	// A connect-refused endpoint shows up as zero completions.
	for _, r := range reports {
		if r.OK == 0 {
			fmt.Fprintf(os.Stderr, "qoscall: class %s completed nothing (server down?)\n", r.Name)
			os.Exit(1)
		}
	}
}
