package main

import (
	"strings"
	"testing"
)

// TestRunByteIdentical pins the acceptance criteria: repeated runs with
// the same seed produce byte-identical output, the high band stays
// within its deadline at 2x saturation, and the circuit breaker opens on
// the saturated primary and re-closes after the load drops.
func TestRunByteIdentical(t *testing.T) {
	opt := options{seed: 42}
	a, b := run(opt), run(opt)
	if a != b {
		t.Fatalf("repeated runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if !strings.Contains(a, "(within deadline") {
		t.Errorf("high band exceeded its deadline:\n%s", a)
	}
	if !strings.Contains(a, "re-closed after load dropped") {
		t.Errorf("breaker did not open and re-close:\n%s", a)
	}
}
