// Command qosoverload runs the overload-protection acceptance scenario:
// the UAV service pipeline driven to 2x saturation of its low-priority
// lane while flight-critical commands share the server, plus group-
// reference ops traffic whose circuit breaker routes around the
// saturated primary. It prints a degradation timeline — per-bucket
// offered/served/shed rates, worst command latency, lane queue depth,
// and breaker state — followed by the breaker transition log and an
// acceptance summary.
//
// Usage:
//
//	qosoverload [-seed N] [-dur D]
//
// All times in the timeline are virtual: repeated runs with the same
// flags produce byte-identical output.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/experiments"
)

type options struct {
	seed int64
	dur  time.Duration
}

// run executes the scenario and returns the full report as a string.
func run(opt options) string {
	r := experiments.RunOverload(experiments.Options{Seed: opt.seed, Duration: opt.dur})

	out := fmt.Sprintf("qosoverload: 2x lane saturation in [%v, %v) of %v (seed %d)\n\n",
		r.WarmEnd, r.OverEnd, r.Duration, opt.seed)
	out += r.RenderTimeline()
	out += "\n"
	out += r.Render()
	out += "\nacceptance:\n"

	verdict := func(ok bool) string {
		if ok {
			return "within"
		}
		return "EXCEEDS"
	}
	out += fmt.Sprintf("  high-band p99 under overload   %v (%s deadline %v)\n",
		r.HighP99(), verdict(r.HighP99() <= r.HighDeadline), r.HighDeadline)
	out += fmt.Sprintf("  high-band failures             %d of %d\n", r.HighFailed, r.HighSent)
	out += fmt.Sprintf("  low-band shed rate             %.1f%% (%d of %d offered; queue bounded, final depth %d)\n",
		100*r.ShedRate, r.LowRefused+r.LowShedDeadline+r.LowShedEvicted, r.LowOffered, r.PrimaryQueueFinal)
	breakerVerdict := "never opened"
	switch {
	case r.BreakerOpened && r.BreakerReclosed:
		breakerVerdict = "opened on the saturated primary, re-closed after load dropped"
	case r.BreakerOpened:
		breakerVerdict = "opened on the saturated primary, still open"
	}
	out += fmt.Sprintf("  circuit breaker                %s (%d transitions)\n", breakerVerdict, len(r.Breaker))
	out += fmt.Sprintf("  ops availability               %d ok, %d overload, %d deadline, %d other\n",
		r.OpsOK, r.OpsOverload, r.OpsDeadline, r.OpsFailed)
	return out
}

func main() {
	opt := options{}
	flag.Int64Var(&opt.seed, "seed", 42, "simulation seed")
	flag.DurationVar(&opt.dur, "dur", 0, "virtual duration (0 = default 9s; split into nominal/overload/recovery thirds)")
	flag.Parse()
	fmt.Print(run(opt))
}
