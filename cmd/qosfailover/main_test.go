package main

import (
	"testing"
	"time"
)

// TestRunByteIdentical pins the acceptance criterion that repeated runs
// with the same flags produce byte-identical output.
func TestRunByteIdentical(t *testing.T) {
	opt := options{seed: 42, period: 100 * time.Millisecond, crashAt: 2 * time.Second, dur: 4 * time.Second}
	a, b := run(opt), run(opt)
	if a != b {
		t.Fatalf("repeated runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	opt.recover = true
	a, b = run(opt), run(opt)
	if a != b {
		t.Fatalf("repeated -recover runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
