// Command qosfailover runs the fault-tolerance acceptance scenario: a
// three-replica object group serving invocation traffic and a
// replicated A/V sink, whose primary host is crash-stopped mid-stream.
// It prints the recovery timeline — heartbeat verdicts, QuO contract
// region transitions, stream retargeting, and the first traffic on the
// backup — followed by a summary with the measured failover latencies.
//
// Usage:
//
//	qosfailover [-seed N] [-period D] [-crash D] [-dur D] [-recover]
//
// All times in the timeline are virtual: repeated runs with the same
// flags produce byte-identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/avstreams"
	"repro/internal/core"
	"repro/internal/ft"
	"repro/internal/orb"
	"repro/internal/quo"
	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/video"
)

type options struct {
	seed    int64
	period  time.Duration
	crashAt time.Duration
	dur     time.Duration
	recover bool
}

// timeline accumulates timestamped events in virtual-time order.
type timeline struct {
	k      *sim.Kernel
	events []string
}

func (tl *timeline) add(format string, args ...any) {
	at := time.Duration(tl.k.Now())
	tl.events = append(tl.events, fmt.Sprintf("  t=%-8v %s", at, fmt.Sprintf(format, args...)))
}

// run executes the scenario and returns the full report as a string.
func run(opt options) string {
	sys := core.NewSystem(opt.seed)
	cli := sys.AddMachine("cli", rtos.HostConfig{})
	names := []string{"s1", "s2", "s3"}
	var machines []*core.Machine
	for _, n := range names {
		m := sys.AddMachine(n, rtos.HostConfig{})
		sys.Link("cli", n, core.LinkSpec{Bps: 100e6, Delay: 200 * time.Microsecond})
		machines = append(machines, m)
	}
	tl := &timeline{k: sys.K}

	cliORB := cli.ORB(orb.Config{AttemptTimeout: opt.period, BackoffBase: 5 * time.Millisecond})
	tr := trace.NewTracer(sys.K)
	cliORB.EnableTracing(tr)

	gm := ft.NewGroupManager()
	monitor := ft.NewMonitor(cliORB, ft.MonitorConfig{Period: opt.period, SuspectAfter: 1, Priority: -1})
	var refs []*orb.ObjectRef
	var recvs []*avstreams.Receiver
	for i, m := range machines {
		o := m.ORB(orb.Config{})
		poa, err := o.CreatePOA("app", orb.POAConfig{})
		if err != nil {
			fatal(err)
		}
		ref, err := poa.Activate("obj", orb.ServantFunc(func(req *orb.ServerRequest) ([]byte, error) {
			req.Thread.Compute(time.Millisecond)
			return req.Body, nil
		}))
		if err != nil {
			fatal(err)
		}
		refs = append(refs, ref)
		det, err := ft.RegisterDetector(o, 30000)
		if err != nil {
			fatal(err)
		}
		monitor.Watch(names[i], det)
		recvs = append(recvs, m.AV().CreateReceiver(6000, 60, nil))
	}
	g, err := gm.CreateGroup(refs...)
	if err != nil {
		fatal(err)
	}
	groupRef := g.Ref()

	var crashTime, deadAt, firstBackupFrame, firstBackupInvoke sim.Time
	monitor.OnChange(func(name string, alive bool) {
		state := "DEAD"
		if alive {
			state = "ALIVE"
		}
		tl.add("heartbeat monitor: %s -> %s", name, state)
		if name == names[0] && !alive && deadAt == 0 {
			deadAt = sys.K.Now()
		}
	})

	contract := quo.NewContract("replica-health", opt.period/5).
		AddCondition(monitor.LivenessCond(names[0])).
		AddCondition(monitor.FractionAliveCond()).
		AddRegion(quo.Region{Name: "normal", When: func(v quo.Values) bool { return v["alive:"+names[0]] == 1 }}).
		AddRegion(quo.Region{Name: "degraded: running on backup", When: func(v quo.Values) bool { return v["alive-fraction"] > 0 }}).
		AddRegion(quo.Region{Name: "down"})
	contract.OnTransition(func(from, to string, v quo.Values) {
		if from == "" {
			from = "(start)"
		}
		tl.add("QuO contract: region %q -> %q", from, to)
	})

	monitor.Start(90)
	contract.Start(sys.K)

	// Replicated A/V sink: stream to the first alive replica, retarget
	// on liveness transitions.
	sender := cli.AV().CreateSender(6001)
	cli.Host.Spawn("source", 50, func(th *rtos.Thread) {
		st, err := sender.Bind(th.Proc(), recvs[0].Addr(), avstreams.QoS{})
		if err != nil {
			fatal(err)
		}
		targets := make([]ft.StreamTarget, len(names))
		for i, n := range names {
			targets[i] = ft.StreamTarget{Name: n, Addr: recvs[i].Addr()}
		}
		ft.BindStreamFailover(monitor, st, targets)
		// Registered after BindStreamFailover so the retarget has
		// already happened when this logs the destination.
		monitor.OnChange(func(string, bool) {
			tl.add("A/V stream: destination now %v", st.Dst())
		})
		st.RunSource(th, video.NewGenerator(video.StreamConfig{}), opt.dur)
	})
	recvs[1].SetHandler(func(f video.Frame, sentAt, recvAt sim.Time) {
		if firstBackupFrame == 0 && crashTime != 0 {
			firstBackupFrame = recvAt
			tl.add("A/V stream: first frame on backup %s (seq %d)", names[1], f.Seq)
		}
	})

	// Control-plane traffic on the group reference.
	invokeOK, invokeFail := 0, 0
	cli.Host.Spawn("invoker", 50, func(th *rtos.Thread) {
		for th.Now() < sim.Time(opt.dur) {
			_, err := cliORB.Invoke(th, groupRef, "work", []byte("x"))
			if err != nil {
				invokeFail++
			} else {
				invokeOK++
				if crashTime != 0 && firstBackupInvoke == 0 {
					firstBackupInvoke = th.Now()
					tl.add("invocation: first post-crash completion (failed over)")
				}
			}
			th.Sleep(50 * time.Millisecond)
		}
	})

	sys.K.At(opt.crashAt, func() {
		crashTime = sys.K.Now()
		tl.add("FAULT: crash-stop %s (CPU halted, NIC down)", names[0])
		ft.CrashHost(machines[0].Host, machines[0].Node)
	})
	if opt.recover {
		sys.K.At(opt.crashAt+(opt.dur-opt.crashAt)/2, func() {
			tl.add("FAULT: %s recovers", names[0])
			ft.RecoverHost(machines[0].Host, machines[0].Node)
		})
	}
	tail := 500 * time.Millisecond
	if opt.recover {
		// The transport's RTO backs off to 2s while the host is silent;
		// after revival both directions retransmit and drain their
		// backlog before fresh heartbeats flow, so the ALIVE verdict can
		// lag the recovery by several seconds.
		tail = 4 * time.Second
	}
	sys.RunUntil(opt.dur + tail)

	failoverSpans := 0
	for _, s := range tr.Collector().Spans() {
		if s.Name == "failover" && s.Layer == trace.LayerFT {
			failoverSpans++
		}
	}

	out := fmt.Sprintf("qosfailover: 3-replica group, heartbeat period %v, crash at %v (seed %d)\n\nrecovery timeline:\n", opt.period, opt.crashAt, opt.seed)
	for _, e := range tl.events {
		out += e + "\n"
	}
	out += "\nsummary:\n"
	out += fmt.Sprintf("  invocations              %d ok, %d failed\n", invokeOK, invokeFail)
	out += fmt.Sprintf("  frames delivered         %s=%d %s=%d %s=%d\n",
		names[0], recvs[0].Stats.ReceivedTotal, names[1], recvs[1].Stats.ReceivedTotal, names[2], recvs[2].Stats.ReceivedTotal)
	out += fmt.Sprintf("  failover trace spans     %d (layer %q)\n", failoverSpans, trace.LayerFT)
	if deadAt > 0 {
		out += fmt.Sprintf("  fault detection latency  %v (bound: 1.5 periods = %v)\n",
			time.Duration(deadAt-crashTime), opt.period*3/2)
	}
	if firstBackupFrame > 0 {
		lat := time.Duration(firstBackupFrame - crashTime)
		verdict := "within"
		if lat > 2*opt.period {
			verdict = "EXCEEDS"
		}
		out += fmt.Sprintf("  stream failover latency  %v (%s 2 detector periods = %v)\n", lat, verdict, 2*opt.period)
	}
	out += fmt.Sprintf("  final contract region    %q\n", contract.Region())
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qosfailover:", err)
	os.Exit(1)
}

func main() {
	opt := options{}
	flag.Int64Var(&opt.seed, "seed", 42, "simulation seed")
	flag.DurationVar(&opt.period, "period", 100*time.Millisecond, "heartbeat detector period")
	flag.DurationVar(&opt.crashAt, "crash", 2*time.Second, "virtual time of the primary's crash")
	flag.DurationVar(&opt.dur, "dur", 4*time.Second, "virtual duration of the scenario")
	flag.BoolVar(&opt.recover, "recover", false, "revive the primary halfway through the remainder")
	flag.Parse()
	fmt.Print(run(opt))
}
