// Command qostrace demonstrates the end-to-end invocation tracing and
// telemetry built into the middleware stack: it runs a deterministic
// scenario with tracing enabled on every layer, then prints the span
// tree of a representative trace, the per-layer critical-path breakdown
// of its end-to-end latency (the shares sum exactly to the observed
// RTT), and the RED-metric telemetry tables.
//
// Usage:
//
//	qostrace [-scenario prio|video|all] [-calls N] [-frames N]
//	         [-jsonl FILE] [-json] [-seed N]
//
// -json replaces the human-readable report with one JSON document on
// stdout: per exemplar trace, the full span list, the critical path,
// and both latency decompositions (exclusive-time and critical-path
// shares) with the guilty layer. -jsonl independently streams every
// span of the run to a file as JSON lines.
//
// The prio scenario is the paper's Figure 2 three-host priority
// propagation path (client -> middle -> server, nested invocation); the
// video scenario is a Figure 3 pipeline (sender -> distributor -> two
// receivers with different QoS) with a QuO contract watching delivery.
// Both are deterministic: repeated runs produce byte-identical output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/avstreams"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/quo"
	"repro/internal/rtcorba"
	"repro/internal/rtos"
	"repro/internal/trace"
	"repro/internal/trace/telemetry"
	"repro/internal/video"
)

func main() {
	scenario := flag.String("scenario", "prio", "scenario to trace: prio, video, all")
	calls := flag.Int("calls", 5, "invocations to issue in the prio scenario")
	frames := flag.Int("frames", 12, "frames to stream in the video scenario")
	jsonl := flag.String("jsonl", "", "write every span as JSON lines to this file")
	jsonMode := flag.Bool("json", false, "emit the exemplar traces as one JSON document instead of the report")
	seed := flag.Int64("seed", 3, "simulation seed")
	flag.Parse()

	var sink *trace.JSONL
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qostrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = trace.NewJSONL(f)
	}

	ran := 0
	var docs []traceDoc
	if *scenario == "prio" || *scenario == "all" {
		docs = append(docs, runPrio(*seed, *calls, sink, *jsonMode)...)
		ran++
	}
	if *scenario == "video" || *scenario == "all" {
		if ran > 0 && !*jsonMode {
			fmt.Println()
		}
		docs = append(docs, runVideo(*seed, *frames, sink, *jsonMode)...)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "qostrace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string][]traceDoc{"traces": docs}); err != nil {
			fmt.Fprintln(os.Stderr, "qostrace: json:", err)
			os.Exit(1)
		}
	}
	if sink != nil && sink.Err() != nil {
		fmt.Fprintln(os.Stderr, "qostrace: jsonl export:", sink.Err())
		os.Exit(1)
	}
}

// segmentJSON is one hop of a trace's critical path in the -json output.
type segmentJSON struct {
	Span     uint64 `json:"span"`
	Name     string `json:"name"`
	Layer    string `json:"layer"`
	StartNs  int64  `json:"start_ns"`
	EndNs    int64  `json:"end_ns"`
	Duration int64  `json:"duration_ns"`
}

// shareJSON is one layer's share of a latency decomposition.
type shareJSON struct {
	Layer string `json:"layer"`
	Ns    int64  `json:"ns"`
}

// traceDoc is the -json form of one exemplar trace: every span, the
// blocking chain, and both per-layer decompositions.
type traceDoc struct {
	Scenario           string           `json:"scenario"`
	Trace              uint64           `json:"trace"`
	TotalNs            int64            `json:"total_ns"`
	GuiltyLayer        string           `json:"guilty_layer,omitempty"`
	Spans              []trace.SpanJSON `json:"spans"`
	CriticalPath       []segmentJSON    `json:"critical_path"`
	Breakdown          []shareJSON      `json:"breakdown"`
	CriticalPathShares []shareJSON      `json:"critical_path_shares"`
}

// buildDoc assembles the JSON document for one trace.
func buildDoc(scenario string, col *trace.Collector, id trace.TraceID) traceDoc {
	doc := traceDoc{Scenario: scenario, Trace: uint64(id), GuiltyLayer: col.GuiltyLayer(id)}
	for _, s := range col.Trace(id) {
		doc.Spans = append(doc.Spans, trace.SpanToJSON(s))
	}
	for _, seg := range col.CriticalPath(id) {
		doc.CriticalPath = append(doc.CriticalPath, segmentJSON{
			Span:     uint64(seg.Span.ID),
			Name:     seg.Span.Name,
			Layer:    seg.Span.Layer,
			StartNs:  int64(seg.Start),
			EndNs:    int64(seg.End),
			Duration: int64(seg.Duration()),
		})
	}
	shares, total := col.Breakdown(id)
	doc.TotalNs = int64(total)
	for _, sh := range shares {
		doc.Breakdown = append(doc.Breakdown, shareJSON{Layer: sh.Layer, Ns: int64(sh.Time)})
	}
	cshares, _ := col.CriticalPathShares(id)
	for _, sh := range cshares {
		doc.CriticalPathShares = append(doc.CriticalPathShares, shareJSON{Layer: sh.Layer, Ns: int64(sh.Time)})
	}
	return doc
}

// runPrio traces the Figure 2 priority-propagation path: a client on
// QNX invokes a middle tier on LynxOS which invokes a back end on
// Solaris, all at CORBA priority 100 over DiffServ EF.
func runPrio(seed int64, calls int, sink *trace.JSONL, jsonMode bool) []traceDoc {
	sys := core.NewSystem(seed)
	client := sys.AddMachine("client", rtos.HostConfig{Priorities: rtos.RangeQNX})
	middle := sys.AddMachine("middle", rtos.HostConfig{Priorities: rtos.RangeLynxOS})
	server := sys.AddMachine("server", rtos.HostConfig{Priorities: rtos.RangeSolaris})
	sys.AddRouter("router")
	link := core.LinkSpec{Bps: 100e6, Delay: 200 * time.Microsecond, Profile: core.ProfileDiffServ}
	sys.Link("client", "router", link)
	sys.Link("middle", "router", link)
	sys.Link("server", "router", link)

	tr := trace.NewTracer(sys.K)
	if sink != nil {
		tr.AddSink(sink)
	}
	sys.Net.SetTracer(tr)
	reg := telemetry.NewRegistry()

	ef := rtcorba.BandedDSCPMapping{Bands: []rtcorba.DSCPBand{{From: 0, DSCP: netsim.DSCPEF}}}
	cliORB := client.ORB(orb.Config{NetMapping: ef})
	midORB := middle.ORB(orb.Config{NetMapping: ef})
	srvORB := server.ORB(orb.Config{})
	for _, o := range []*orb.ORB{cliORB, midORB, srvORB} {
		o.EnableTracing(tr)
	}
	cliORB.AddClientInterceptor(&orb.TelemetryProbe{Reg: reg})
	midORB.AddClientInterceptor(&orb.TelemetryProbe{Reg: reg})

	cliORB.MappingManager().Install(rtcorba.StepMapping{Steps: []rtcorba.Step{{From: 0, Native: 16}}})
	midORB.MappingManager().Install(rtcorba.StepMapping{Steps: []rtcorba.Step{{From: 0, Native: 128}}})
	srvORB.MappingManager().Install(rtcorba.StepMapping{Steps: []rtcorba.Step{{From: 0, Native: 136}}})

	srvPOA, err := srvORB.CreatePOA("app", orb.POAConfig{Model: rtcorba.ClientPropagated})
	check(err)
	srvRef, err := srvPOA.Activate("backend", orb.ServantFunc(func(req *orb.ServerRequest) ([]byte, error) {
		req.Thread.Compute(300 * time.Microsecond) // image-processing stand-in
		return make([]byte, 1024), nil
	}))
	check(err)

	midPOA, err := midORB.CreatePOA("app", orb.POAConfig{Model: rtcorba.ClientPropagated})
	check(err)
	midRef, err := midPOA.Activate("relay", orb.ServantFunc(func(req *orb.ServerRequest) ([]byte, error) {
		req.Thread.Compute(100 * time.Microsecond)
		return midORB.InvokeOpt(req.Thread, srvRef, "work", req.Body,
			orb.InvokeOptions{Priority: req.Priority})
	}))
	check(err)

	client.Host.Spawn("client", 1, func(t *rtos.Thread) {
		check(cliORB.Current(t).SetPriority(100))
		body := make([]byte, 512)
		for i := 0; i < calls; i++ {
			if _, err := cliORB.Invoke(t, midRef, "work", body); err != nil {
				panic(err)
			}
			t.Sleep(10 * time.Millisecond)
		}
	})
	sys.RunUntil(time.Second)
	tr.FlushOpen()

	col := tr.Collector()
	ids := col.TraceIDs()
	if len(ids) == 0 {
		return nil
	}
	// The last trace shows the steady state: connections on both hops
	// are warm, so no setup cost pollutes the exemplar.
	exemplar := ids[len(ids)-1]
	if jsonMode {
		return []traceDoc{buildDoc("prio", col, exemplar)}
	}
	fmt.Printf("== scenario prio: client -> middle -> server at CORBA priority 100 (%d invocations, %d traces, %d spans) ==\n\n",
		calls, len(ids), col.Len())
	fmt.Print(col.RenderTree(exemplar))
	fmt.Println()
	printBreakdown(col, exemplar)
	fmt.Println()
	fmt.Print(reg.Render())
	return nil
}

// runVideo traces one Figure 3 pipeline: a sender streams MPEG frames
// to a distributor that relays every frame to a display receiver at
// full rate and to an ATR receiver thinned to I-frames only, while a
// QuO contract watches delivered rate.
func runVideo(seed int64, frames int, sink *trace.JSONL, jsonMode bool) []traceDoc {
	sys := core.NewSystem(seed)
	uav := sys.AddMachine("uav", rtos.HostConfig{Hz: 750e6})
	dist := sys.AddMachine("distributor", rtos.HostConfig{Hz: 1e9})
	station := sys.AddMachine("station", rtos.HostConfig{Hz: 1e9})
	atr := sys.AddMachine("atr", rtos.HostConfig{Hz: 1e9})
	sys.Link("uav", "distributor", core.LinkSpec{Bps: 20e6, Delay: 5 * time.Millisecond})
	sys.Link("distributor", "station", core.LinkSpec{Bps: 10e6, Delay: time.Millisecond})
	sys.Link("distributor", "atr", core.LinkSpec{Bps: 2e6, Delay: 2 * time.Millisecond})

	tr := trace.NewTracer(sys.K)
	if sink != nil {
		tr.AddSink(sink)
	}
	sys.Net.SetTracer(tr)
	reg := telemetry.NewRegistry()
	for _, m := range []*core.Machine{uav, dist, station, atr} {
		m.AV().SetTracer(tr)
	}

	stationRecv := station.AV().CreateReceiver(5000, 50, nil)
	atrRecv := atr.AV().CreateReceiver(5000, 50, nil)

	d := dist.AV().NewDistributor(5001, 60)
	dist.Host.Spawn("binder", 60, func(t *rtos.Thread) {
		st, err := d.AddBranch(t.Proc(), 5002, stationRecv.Addr(), avstreams.QoS{DSCP: netsim.DSCPEF})
		check(err)
		_ = st
		atrSt, err := d.AddBranch(t.Proc(), 5003, atrRecv.Addr(), avstreams.QoS{})
		check(err)
		atrSt.SetFilter(video.FilterIOnly)
	})

	// A QuO contract watches the station's delivered rate; its span
	// records every evaluation so the trace shows the adaptive layer
	// working alongside the data path.
	var lastCount int64
	fps := quo.NewFuncCond("station-fps", func() float64 {
		got := stationRecv.Stats.ReceivedTotal
		rate := float64(got-lastCount) * 10 // 100ms window
		lastCount = got
		return rate
	})
	contract := quo.NewContract("video-quality", 100*time.Millisecond).
		AddCondition(fps).
		AddRegion(quo.Region{Name: "normal", When: func(v quo.Values) bool { return v["station-fps"] >= 15 }}).
		AddRegion(quo.Region{Name: "degraded"}).
		AttachTracer(tr).
		Instrument(reg)

	sender := uav.AV().CreateSender(5004)
	dur := time.Duration(frames) * video.StreamConfig{}.FrameInterval()
	uav.Host.Spawn("camera", 40, func(t *rtos.Thread) {
		st, err := sender.Bind(t.Proc(), d.InAddr(), avstreams.QoS{DSCP: netsim.DSCPEF})
		check(err)
		contract.Start(sys.K)
		st.RunSource(t, video.NewGenerator(video.StreamConfig{}), dur)
	})
	sys.RunUntil(dur + 500*time.Millisecond)
	contract.Stop()
	tr.FlushOpen()

	col := tr.Collector()
	ids := col.TraceIDs()

	// Exemplar: the first frame trace (the contract owns its own trace).
	var frameTrace, contractTrace trace.TraceID
	for _, id := range ids {
		root := col.Root(id)
		if root == nil {
			continue
		}
		if frameTrace == 0 && strings.HasPrefix(root.Name, "frame") {
			frameTrace = id
		}
		if contractTrace == 0 && strings.HasPrefix(root.Name, "contract") {
			contractTrace = id
		}
	}
	if jsonMode {
		var docs []traceDoc
		if frameTrace != 0 {
			docs = append(docs, buildDoc("video/frame", col, frameTrace))
		}
		if contractTrace != 0 {
			docs = append(docs, buildDoc("video/contract", col, contractTrace))
		}
		return docs
	}
	fmt.Printf("== scenario video: uav -> distributor -> {station, atr} (%d frames sent, %d traces, %d spans) ==\n\n",
		frames, len(ids), col.Len())
	if frameTrace != 0 {
		fmt.Print(col.RenderTree(frameTrace))
		seen := make(map[string]bool)
		var layers []string
		for _, s := range col.Trace(frameTrace) {
			if !seen[s.Layer] {
				seen[s.Layer] = true
				layers = append(layers, s.Layer)
			}
		}
		sort.Strings(layers)
		fmt.Printf("\none trace ID spans sender -> distributor -> receivers: %d spans across layers %s\n",
			len(col.Trace(frameTrace)), strings.Join(layers, ", "))
		fmt.Println()
		printBreakdown(col, frameTrace)
	}
	if contractTrace != 0 {
		fmt.Println()
		fmt.Print(col.RenderTree(contractTrace))
	}
	fmt.Println()
	fmt.Print(reg.Render())
	return nil
}

// printBreakdown renders the critical-path per-layer decomposition of
// one trace and verifies the shares sum to the end-to-end latency.
func printBreakdown(col *trace.Collector, id trace.TraceID) {
	shares, total := col.Breakdown(id)
	if total == 0 {
		fmt.Printf("trace %d: root span still open, no breakdown\n", id)
		return
	}
	tb := metrics.NewTable(fmt.Sprintf("Critical-path latency breakdown (trace %d)", id),
		"Layer", "Time", "Share")
	var sum time.Duration
	for _, sh := range shares {
		sum += sh.Time
		tb.AddRow(sh.Layer, sh.Time.String(),
			fmt.Sprintf("%.1f%%", 100*sh.Time.Seconds()/total.Seconds()))
	}
	fmt.Print(tb.Render())
	delta := 100 * (sum - total).Seconds() / total.Seconds()
	if delta < 0 {
		delta = -delta
	}
	fmt.Printf("layer sum = %v, end-to-end = %v, delta = %.3f%% (within 1%%: %v)\n",
		sum, total, delta, delta <= 1.0)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
