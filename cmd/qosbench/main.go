// Command qosbench regenerates every table and figure from the paper's
// evaluation section (Section 5) on the simulated substrate.
//
// Usage:
//
//	qosbench [-run all|fig2|fig4|fig5|fig6|fig7|table1|table2|overload|slo|ablations|wire|chaos|obs|pubsub|verify]
//	         [-seed N] [-duration D] [-requests N] [-series]
//
// -duration scales the measured portion of each experiment; the default
// 0 selects each experiment's paper-scale length (30s for the DiffServ
// figures, 300s for the reservation runs, 40 images for Table 2).
// -series additionally dumps raw latency time series (the figures' line
// data) for the priority experiments. -json writes one BENCH_<name>.json
// per measured experiment with per-scenario latency percentiles and
// throughput, for machine consumption (regression tracking, plotting).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/wire"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, fig2, fig4, fig5, fig6, fig7, table1, table2, overload, slo, ablations, wire, chaos, obs, pubsub, verify (wire, chaos, obs, pubsub and verify are explicit-only)")
	seed := flag.Int64("seed", 42, "simulation seed")
	requests := flag.Int("requests", 0, "chaos soak request count (0 = default 10000)")
	duration := flag.Duration("duration", 0, "override experiment duration (0 = paper scale)")
	series := flag.Bool("series", false, "dump raw latency series for fig4/fig5/fig6")
	csv := flag.Bool("csv", false, "emit latency series as CSV instead of gnuplot-style text")
	plot := flag.Bool("plot", false, "render ASCII plots of the figure series")
	jsonOut := flag.Bool("json", false, "write BENCH_<name>.json with per-scenario percentiles and throughput")
	flag.Parse()

	opt := experiments.Options{Seed: *seed, Duration: *duration}
	start := time.Now()
	ran := 0

	want := func(name string) bool { return *run == "all" || *run == name }
	emit := func(name string, stats []benchStat) {
		if *jsonOut {
			writeBench(name, *seed, stats)
		}
	}

	if want("fig2") {
		fmt.Println(experiments.RunFigure2(opt).Render())
		ran++
	}
	if want("fig4") {
		r := experiments.RunFigure4(opt)
		fmt.Println(r.Render())
		if *plot {
			fmt.Println(metrics.ASCIIPlot(r.NoTraffic.S1, 100, 10))
			fmt.Println(metrics.ASCIIPlot(r.WithTraffic.S1, 100, 10))
		}
		if *series {
			dumpSeries(*csv, r.NoTraffic.S1, r.WithTraffic.S1)
		}
		emit("fig4", append(prioStats(r.NoTraffic), prioStats(r.WithTraffic)...))
		ran++
	}
	if want("fig5") {
		r := experiments.RunFigure5(opt)
		fmt.Println(r.Render())
		if *series {
			dumpSeries(*csv, r.NoTraffic.S1, r.NoTraffic.S2)
		}
		emit("fig5", append(prioStats(r.NoTraffic), prioStats(r.WithTraffic)...))
		ran++
	}
	if want("fig6") {
		r := experiments.RunFigure6(opt)
		fmt.Println(r.Render())
		if *plot {
			fmt.Println(metrics.ASCIIPlot(r.Combined.S1, 100, 10))
		}
		if *series {
			dumpSeries(*csv, r.Combined.S1, r.Combined.S2)
		}
		emit("fig6", prioStats(r.Combined))
		ran++
	}
	if want("fig7") {
		r := experiments.RunFigure7(opt)
		fmt.Println(r.Render())
		emit("fig7", []benchStat{resvStat(r.NoAdaptation), resvStat(r.PartialWithFilter), resvStat(r.FullReservation)})
		ran++
	}
	if want("table1") {
		r := experiments.RunTable1(opt)
		fmt.Println(r.Render())
		var stats []benchStat
		for _, c := range r.Cases {
			stats = append(stats, resvStat(c))
		}
		emit("table1", stats)
		ran++
	}
	if want("table2") {
		r := experiments.RunTable2(opt)
		fmt.Println(r.Render())
		var stats []benchStat
		for _, row := range r.Rows {
			stats = append(stats,
				summaryStat(row.Algo.String()+": no load", row.NoLoad),
				summaryStat(row.Algo.String()+": competing load", row.Load),
				summaryStat(row.Algo.String()+": load + reserve", row.Reserve))
		}
		emit("table2", stats)
		ran++
	}
	if want("overload") {
		r := experiments.RunOverload(opt)
		fmt.Println(r.Render())
		emit("overload", overloadStats(r))
		ran++
	}
	if want("slo") {
		r := experiments.RunSLO(opt)
		fmt.Print(r.SLO.Render())
		fmt.Printf("burn fired %v, p95 rule fired %v; %d/%d deadline misses kept; %.1f traces/s kept\n\n",
			renderFired(r.BurnFired, r.BurnFiredAt), renderFired(r.AlertFired, r.AlertFiredAt),
			r.MissKept, r.MissTotal, r.KeptPerSec)
		emit("slo", sloStats(r))
		ran++
	}
	if want("ablations") {
		fmt.Println(experiments.RenderAblations(experiments.RunAblations(opt)))
		ran++
	}
	// "wire" is explicit-only (not part of -run all): it opens real
	// localhost TCP sockets and burns wall-clock time, unlike the
	// virtual-time experiments above.
	if *run == "wire" {
		o := wire.BenchOptions{Duration: *duration}
		res, err := wire.RunBench(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wire bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		emit("wire", wireStats(res))
		ran++
	}
	// "chaos" is likewise explicit-only: a wall-clock soak over real TCP
	// with fault injection, asserting the robustness invariants hard
	// (non-zero exit on any breach, for the CI smoke step).
	if *run == "chaos" {
		rep, err := chaos.RunSoak(chaos.SoakConfig{
			Seed:     *seed,
			Requests: *requests,
			Log:      func(f string, a ...any) { fmt.Printf("  "+f+"\n", a...) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos soak: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.Render())
		emit("chaos", chaosStats(rep))
		if v := rep.Violations(); len(v) > 0 {
			for _, msg := range v {
				fmt.Fprintf(os.Stderr, "chaos soak invariant violated: %s\n", msg)
			}
			os.Exit(1)
		}
		ran++
	}
	// "obs" is explicit-only: it prices the wall-clock observability
	// plane by running the wire load with the full observer stack
	// (sampler + rules + runtime collector + SLO tracker + profiler +
	// live scraper) against an observers-off baseline.
	if *run == "obs" {
		res, err := wire.RunObsBench(wire.ObsBenchOptions{Duration: *duration})
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		emit("obs", obsStats(res))
		ran++
	}
	// "pubsub" is explicit-only: a wall-clock run of the event channel
	// under a best-effort flood, asserting the dissemination invariants
	// hard (non-zero exit on any breach, for the CI smoke step).
	if *run == "pubsub" {
		r := experiments.RunPubSub(opt)
		fmt.Println(r.Render())
		emit("pubsub", pubsubStats(r))
		if v := r.Violations(); len(v) > 0 {
			for _, msg := range v {
				fmt.Fprintf(os.Stderr, "pubsub invariant violated: %s\n", msg)
			}
			os.Exit(1)
		}
		ran++
	}
	if *run == "verify" {
		checks := experiments.Verify(opt)
		fmt.Println(experiments.RenderChecks(checks))
		for _, c := range checks {
			if !c.OK {
				os.Exit(1)
			}
		}
		ran++
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("qosbench: %d experiment(s) in %v wall time\n", ran, time.Since(start).Round(time.Millisecond))
}

// dumpSeries prints latency series either as CSV or gnuplot-style text.
func dumpSeries(csv bool, series ...*metrics.Series) {
	for _, s := range series {
		if csv {
			if err := s.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			}
		} else {
			fmt.Println(experiments.RenderSeries(s))
		}
	}
}

// benchStat is one scenario's entry in a BENCH_<name>.json file.
// Latencies are milliseconds; throughput is samples per simulated second.
type benchStat struct {
	Scenario   string  `json:"scenario"`
	Samples    int     `json:"samples"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	Throughput float64 `json:"throughput_per_sec"`
	// ShedRate is the fraction of offered load deliberately shed
	// (overload scenarios only).
	ShedRate float64 `json:"shed_rate,omitempty"`
	// SLO-scenario fields: when each alerting strategy first fired
	// (virtual ms, 0 = never), the sampler's kept-trace rate, and the
	// fraction of deadline-missed invocations with a kept trace.
	BurnFiredMs  float64 `json:"burn_fired_ms,omitempty"`
	AlertFiredMs float64 `json:"alert_fired_ms,omitempty"`
	KeptPerSec   float64 `json:"kept_traces_per_sec,omitempty"`
	MissKept     float64 `json:"deadline_miss_kept_ratio,omitempty"`
	// Chaos-scenario fields: successful-failover latency percentiles,
	// retry-budget accounting, and the recovery bounds measured around
	// the primary kill/restart window.
	FailoverP50Ms     float64 `json:"failover_p50_ms,omitempty"`
	FailoverP99Ms     float64 `json:"failover_p99_ms,omitempty"`
	RetryBudgetSpent  int64   `json:"retry_budget_spent,omitempty"`
	RetryBudgetDenied int64   `json:"retry_budget_denied,omitempty"`
	ServiceGapMs      float64 `json:"service_gap_ms,omitempty"`
	RedetectMs        float64 `json:"redetect_ms,omitempty"`
	// Observability-scenario fields: the EF p99 cost of the full
	// observer stack relative to the observers-off baseline, and the
	// observer-activity counts proving the stack was actually running.
	OverheadRatio   float64 `json:"overhead_ratio,omitempty"`
	SamplerTicks    int     `json:"sampler_ticks,omitempty"`
	ProfileCaptures float64 `json:"profile_captures,omitempty"`
	EventsStreamed  int     `json:"events_streamed,omitempty"`
	// Pub/sub-scenario fields: loaded-over-baseline EF fan-out p99
	// ratio, admission refusals, and drop attribution. EFDrops is a
	// pointer so the mandatory zero still serializes.
	FanoutP99Ratio float64 `json:"fanout_p99_ratio,omitempty"`
	EFDrops        *int64  `json:"ef_drops,omitempty"`
	SlowDrops      int64   `json:"slow_drops,omitempty"`
	OtherDrops     int64   `json:"other_drops,omitempty"`
	Refused        int64   `json:"refused,omitempty"`
	CoalescedN     int64   `json:"coalesced,omitempty"`
	SampledN       int64   `json:"sampled,omitempty"`
	DropRecords    int     `json:"drop_records,omitempty"`
}

type benchFile struct {
	Name      string      `json:"name"`
	Seed      int64       `json:"seed"`
	Scenarios []benchStat `json:"scenarios"`
}

// seriesStat derives a benchStat from a latency series and its summary:
// percentiles from the summary, throughput from the sample count over
// the series' observed time span.
func seriesStat(scenario string, s *metrics.Series, sum metrics.Summary) benchStat {
	st := benchStat{
		Scenario: scenario,
		Samples:  sum.N,
		P50Ms:    sum.P50 * 1e3,
		P95Ms:    sum.P95 * 1e3,
		P99Ms:    sum.P99 * 1e3,
	}
	if n := len(s.Points); n > 1 {
		if span := time.Duration(s.Points[n-1].T - s.Points[0].T).Seconds(); span > 0 {
			st.Throughput = float64(n-1) / span
		}
	}
	return st
}

// wireStats reports the real-socket wire benchmark: wall-clock
// percentiles per class (ClassReport latencies are already ms),
// throughput as completed calls per second, and the best-effort
// class's server-side shed fraction (admission refusals + deadline
// sheds over offered load) — the EF entry should show a p99 far below
// the BE entry's.
func wireStats(r *wire.BenchResult) []benchStat {
	ef := benchStat{
		Scenario:   "wire EF (expedited, wall clock)",
		Samples:    int(r.EF.OK),
		P50Ms:      r.EF.Latency.P50,
		P95Ms:      r.EF.Latency.P95,
		P99Ms:      r.EF.Latency.P99,
		Throughput: r.EF.Throughput,
	}
	be := benchStat{
		Scenario:   "wire BE (best-effort, wall clock)",
		Samples:    int(r.BE.OK),
		P50Ms:      r.BE.Latency.P50,
		P95Ms:      r.BE.Latency.P95,
		P99Ms:      r.BE.Latency.P99,
		Throughput: r.BE.Throughput,
	}
	if r.BE.Offered > 0 {
		be.ShedRate = (r.Refused + r.Shed) / float64(r.BE.Offered)
	}
	return []benchStat{ef, be}
}

// chaosStats reports the chaos soak: EF latency with and without BE
// torture (the isolation claim), BE latency under torture, and one
// failover/recovery entry carrying the budget and bound measurements.
func chaosStats(r *chaos.SoakReport) []benchStat {
	rate := func(n int, ms float64) float64 {
		if ms <= 0 {
			return 0
		}
		return float64(n) / (ms / 1000)
	}
	return []benchStat{
		{
			Scenario:   "chaos EF baseline (no faults)",
			Samples:    r.EFBaselineN,
			P50Ms:      r.EFBaselineP50Ms,
			P95Ms:      r.EFBaselineP95Ms,
			P99Ms:      r.EFBaselineP99Ms,
			Throughput: rate(r.EFBaselineN, r.WarmMs),
		},
		{
			Scenario:   "chaos EF under BE torture",
			Samples:    r.EFFaultN,
			P50Ms:      r.EFFaultP50Ms,
			P95Ms:      r.EFFaultP95Ms,
			P99Ms:      r.EFFaultP99Ms,
			Throughput: rate(r.EFFaultN, r.FaultMs),
		},
		{
			Scenario:   "chaos BE under torture (latency + kill/restart)",
			Samples:    r.BEFaultN,
			P50Ms:      r.BEFaultP50Ms,
			P95Ms:      r.BEFaultP95Ms,
			P99Ms:      r.BEFaultP99Ms,
			Throughput: rate(r.BEFaultN, r.FaultMs),
		},
		{
			Scenario:          "chaos failover/recovery",
			Samples:           r.Failovers,
			P50Ms:             r.FailoverP50Ms,
			P95Ms:             r.FailoverP95Ms,
			P99Ms:             r.FailoverP99Ms,
			Throughput:        rate(r.Failovers, r.FaultMs),
			FailoverP50Ms:     r.FailoverP50Ms,
			FailoverP99Ms:     r.FailoverP99Ms,
			RetryBudgetSpent:  r.RetryBudgetSpent,
			RetryBudgetDenied: r.RetryBudgetDenied,
			ServiceGapMs:      r.ServiceGapMs,
			RedetectMs:        r.RedetectMs,
		},
	}
}

// obsStats reports the observer-overhead benchmark: EF percentiles
// with observers off and on (the overhead entry carries the ratio and
// the observer-activity evidence), plus both BE entries for context.
func obsStats(r *wire.ObsBenchResult) []benchStat {
	class := func(scenario string, c wire.ClassReport) benchStat {
		return benchStat{
			Scenario:   scenario,
			Samples:    int(c.OK),
			P50Ms:      c.Latency.P50,
			P95Ms:      c.Latency.P95,
			P99Ms:      c.Latency.P99,
			Throughput: c.Throughput,
		}
	}
	off := class("obs EF observers off", r.OffEF)
	on := class("obs EF observers on (sampler+runtime+slo+profiler+scraper)", r.OnEF)
	on.OverheadRatio = r.OverheadP99
	on.SamplerTicks = r.SamplerTicks
	on.ProfileCaptures = r.ProfileCaptures
	on.EventsStreamed = r.EventsStreamed
	return []benchStat{
		off, on,
		class("obs BE observers off", r.OffBE),
		class("obs BE observers on", r.OnBE),
	}
}

// pubsubStats reports the pub/sub scenario: EF fan-out percentiles for
// the unloaded and flooded phases, with the loaded entry carrying the
// ratio, admission, and drop-attribution evidence.
func pubsubStats(r experiments.PubSubResult) []benchStat {
	base := benchStat{
		Scenario: "pubsub EF fan-out, unloaded baseline (wall clock)",
		Samples:  r.Baseline.N,
		P50Ms:    r.Baseline.P50 * 1e3,
		P95Ms:    r.Baseline.P95 * 1e3,
		P99Ms:    r.Baseline.P99 * 1e3,
	}
	efDrops := int64(r.EFDropped)
	load := benchStat{
		Scenario:       "pubsub EF fan-out under BE flood (wall clock)",
		Samples:        r.Loaded.N,
		P50Ms:          r.Loaded.P50 * 1e3,
		P95Ms:          r.Loaded.P95 * 1e3,
		P99Ms:          r.Loaded.P99 * 1e3,
		FanoutP99Ratio: r.FanoutP99Ratio(),
		EFDrops:        &efDrops,
		SlowDrops:      int64(r.SlowOverflow),
		OtherDrops:     int64(r.OtherOverflow),
		Refused:        int64(r.Refused),
		CoalescedN:     int64(r.Coalesced),
		SampledN:       int64(r.Sampled),
		DropRecords:    r.DropRecords,
	}
	if r.Duration > 0 {
		load.Throughput = float64(r.EFDelivered) / r.Duration.Seconds()
	}
	return []benchStat{base, load}
}

// prioStats reports both receiver flows of a DiffServ priority case.
func prioStats(c experiments.PrioCaseResult) []benchStat {
	return []benchStat{
		seriesStat(c.Name+" / sender 1", c.S1, c.Sum1),
		seriesStat(c.Name+" / sender 2", c.S2, c.Sum2),
	}
}

// resvStat reports a reservation case: latency percentiles over the
// load window, throughput as mean frames received per second.
func resvStat(c experiments.ResvCaseResult) benchStat {
	st := benchStat{
		Scenario: c.Name,
		Samples:  c.LatencyUnderLoad.N,
		P50Ms:    c.LatencyUnderLoad.P50 * 1e3,
		P95Ms:    c.LatencyUnderLoad.P95 * 1e3,
		P99Ms:    c.LatencyUnderLoad.P99 * 1e3,
	}
	if len(c.RecvPerSec) > 0 {
		var total int64
		for _, n := range c.RecvPerSec {
			total += n
		}
		st.Throughput = float64(total) / float64(len(c.RecvPerSec))
	}
	return st
}

// overloadStats reports the overload scenario: high-band latency during
// the 2x window, and the low band's shed rate with its served rate as
// throughput.
func overloadStats(r experiments.OverloadResult) []benchStat {
	high := benchStat{
		Scenario: "overload / high band (2x window)",
		Samples:  r.HighOver.N,
		P50Ms:    r.HighOver.P50 * 1e3,
		P95Ms:    r.HighOver.P95 * 1e3,
		P99Ms:    r.HighOver.P99 * 1e3,
	}
	if r.Duration > 0 {
		high.Throughput = float64(r.HighOK) / r.Duration.Seconds()
	}
	low := benchStat{
		Scenario: "overload / low band",
		Samples:  int(r.LowOffered),
		ShedRate: r.ShedRate,
	}
	if r.Duration > 0 {
		low.Throughput = float64(r.LowServed) / r.Duration.Seconds()
	}
	return []benchStat{high, low}
}

// renderFired formats a first-firing time for the slo summary line.
func renderFired(fired bool, at time.Duration) string {
	if !fired {
		return "never"
	}
	return at.String()
}

// sloStats reports the SLO scenario: the successful-invocation RTT
// distribution (the app.rtt_ms histogram is already in milliseconds)
// plus the alerting head-to-head and sampling-economics fields.
func sloStats(r experiments.SLOResult) []benchStat {
	sum := r.Reg.Histogram("app.rtt_ms").Summary()
	st := benchStat{
		Scenario:     "slo / client rtt (successes)",
		Samples:      sum.N,
		P50Ms:        sum.P50,
		P95Ms:        sum.P95,
		P99Ms:        sum.P99,
		BurnFiredMs:  float64(r.BurnFiredAt) / float64(time.Millisecond),
		AlertFiredMs: float64(r.AlertFiredAt) / float64(time.Millisecond),
		KeptPerSec:   r.KeptPerSec,
	}
	if r.Duration > 0 {
		st.Throughput = float64(r.OK) / r.Duration.Seconds()
	}
	if r.MissTotal > 0 {
		st.MissKept = float64(r.MissKept) / float64(r.MissTotal)
	}
	return []benchStat{st}
}

// summaryStat reports a per-image processing-time summary; throughput
// is the implied steady-state image rate.
func summaryStat(scenario string, sum metrics.Summary) benchStat {
	st := benchStat{
		Scenario: scenario,
		Samples:  sum.N,
		P50Ms:    sum.P50 * 1e3,
		P95Ms:    sum.P95 * 1e3,
		P99Ms:    sum.P99 * 1e3,
	}
	if sum.Mean > 0 {
		st.Throughput = 1 / sum.Mean
	}
	return st
}

// writeBench writes BENCH_<name>.json in the current directory.
func writeBench(name string, seed int64, stats []benchStat) {
	data, err := json.MarshalIndent(benchFile{Name: name, Seed: seed, Scenarios: stats}, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		return
	}
	path := "BENCH_" + name + ".json"
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}
