// Command qosbench regenerates every table and figure from the paper's
// evaluation section (Section 5) on the simulated substrate.
//
// Usage:
//
//	qosbench [-run all|fig2|fig4|fig5|fig6|fig7|table1|table2]
//	         [-seed N] [-duration D] [-series]
//
// -duration scales the measured portion of each experiment; the default
// 0 selects each experiment's paper-scale length (30s for the DiffServ
// figures, 300s for the reservation runs, 40 images for Table 2).
// -series additionally dumps raw latency time series (the figures' line
// data) for the priority experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, fig2, fig4, fig5, fig6, fig7, table1, table2, ablations, verify")
	seed := flag.Int64("seed", 42, "simulation seed")
	duration := flag.Duration("duration", 0, "override experiment duration (0 = paper scale)")
	series := flag.Bool("series", false, "dump raw latency series for fig4/fig5/fig6")
	csv := flag.Bool("csv", false, "emit latency series as CSV instead of gnuplot-style text")
	plot := flag.Bool("plot", false, "render ASCII plots of the figure series")
	flag.Parse()

	opt := experiments.Options{Seed: *seed, Duration: *duration}
	start := time.Now()
	ran := 0

	want := func(name string) bool { return *run == "all" || *run == name }

	if want("fig2") {
		fmt.Println(experiments.RunFigure2(opt).Render())
		ran++
	}
	if want("fig4") {
		r := experiments.RunFigure4(opt)
		fmt.Println(r.Render())
		if *plot {
			fmt.Println(metrics.ASCIIPlot(r.NoTraffic.S1, 100, 10))
			fmt.Println(metrics.ASCIIPlot(r.WithTraffic.S1, 100, 10))
		}
		if *series {
			dumpSeries(*csv, r.NoTraffic.S1, r.WithTraffic.S1)
		}
		ran++
	}
	if want("fig5") {
		r := experiments.RunFigure5(opt)
		fmt.Println(r.Render())
		if *series {
			dumpSeries(*csv, r.NoTraffic.S1, r.NoTraffic.S2)
		}
		ran++
	}
	if want("fig6") {
		r := experiments.RunFigure6(opt)
		fmt.Println(r.Render())
		if *plot {
			fmt.Println(metrics.ASCIIPlot(r.Combined.S1, 100, 10))
		}
		if *series {
			dumpSeries(*csv, r.Combined.S1, r.Combined.S2)
		}
		ran++
	}
	if want("fig7") {
		fmt.Println(experiments.RunFigure7(opt).Render())
		ran++
	}
	if want("table1") {
		fmt.Println(experiments.RunTable1(opt).Render())
		ran++
	}
	if want("table2") {
		fmt.Println(experiments.RunTable2(opt).Render())
		ran++
	}
	if want("ablations") {
		fmt.Println(experiments.RenderAblations(experiments.RunAblations(opt)))
		ran++
	}
	if *run == "verify" {
		checks := experiments.Verify(opt)
		fmt.Println(experiments.RenderChecks(checks))
		for _, c := range checks {
			if !c.OK {
				os.Exit(1)
			}
		}
		ran++
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("qosbench: %d experiment(s) in %v wall time\n", ran, time.Since(start).Round(time.Millisecond))
}

// dumpSeries prints latency series either as CSV or gnuplot-style text.
func dumpSeries(csv bool, series ...*metrics.Series) {
	for _, s := range series {
		if csv {
			if err := s.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			}
		} else {
			fmt.Println(experiments.RenderSeries(s))
		}
	}
}
