// Command topoview builds the evaluation topologies and dumps their
// nodes, links, routes and reservation state — a debugging aid for the
// simulated testbeds.
//
// Usage:
//
//	topoview [-topo diffserv|reservation]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rtos"
	"repro/internal/sim"
)

func main() {
	topo := flag.String("topo", "diffserv", "topology to inspect: diffserv (figures 4-6) or reservation (figure 7 / table 1)")
	flag.Parse()

	var sys *core.System
	switch *topo {
	case "diffserv":
		sys = diffservTopo()
	case "reservation":
		sys = reservationTopo()
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
		os.Exit(2)
	}
	dump(sys)
}

func diffservTopo() *core.System {
	sys := core.NewSystem(1)
	sys.AddMachine("sender", rtos.HostConfig{Hz: 1e9})
	sys.AddMachine("receiver", rtos.HostConfig{Hz: 1e9})
	sys.AddMachine("crossgen", rtos.HostConfig{Hz: 1e9})
	sys.AddRouter("router")
	sys.Link("sender", "router", core.LinkSpec{Bps: 100e6, Delay: 100 * time.Microsecond, Profile: core.ProfileDiffServ})
	sys.Link("crossgen", "router", core.LinkSpec{Bps: 100e6, Delay: 100 * time.Microsecond, Profile: core.ProfileDiffServ})
	sys.Link("router", "receiver", core.LinkSpec{Bps: 10e6, Delay: 100 * time.Microsecond, Profile: core.ProfileDiffServ})
	return sys
}

func reservationTopo() *core.System {
	sys := core.NewSystem(1)
	snd := sys.AddMachine("sender", rtos.HostConfig{Hz: 750e6})
	rcv := sys.AddMachine("receiver", rtos.HostConfig{Hz: 750e6})
	sys.Link("sender", "receiver", core.LinkSpec{Bps: 10e6, Delay: 500 * time.Microsecond, Profile: core.ProfileFullQoS})
	// Demonstrate an installed reservation in the dump.
	flow := sys.Net.NewFlowID()
	sys.K.Go("reserve", func(p *sim.Proc) {
		_, err := sys.Net.ReserveFlow(p, netsim.ReservationSpec{
			Flow: flow, Src: snd.Node, Dst: rcv.Node, RateBps: 1.2e6,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "reservation failed: %v\n", err)
		}
	})
	sys.RunUntil(time.Second)
	return sys
}

func dump(sys *core.System) {
	nodes := metrics.NewTable("Nodes", "ID", "Name", "Kind")
	for _, nd := range sys.Net.Nodes() {
		kind := "host"
		if nd.Router() {
			kind = "router"
		}
		nodes.AddRow(fmt.Sprintf("%d", nd.ID()), nd.Name(), kind)
	}
	fmt.Println(nodes.Render())

	links := metrics.NewTable("Links", "From", "To", "Bandwidth", "Delay", "Queue backlog", "Reserved")
	for _, l := range sys.Net.Links() {
		reserved := "n/a"
		if rc, ok := l.Queue().(netsim.ReservationCapable); ok {
			reserved = fmt.Sprintf("%.2f Mbps", rc.ReservedRate()/1e6)
		}
		links.AddRow(
			l.From().Name(), l.To().Name(),
			fmt.Sprintf("%.1f Mbps", l.Bps()/1e6),
			l.Delay().String(),
			fmt.Sprintf("%d B", l.Queue().Backlog()),
			reserved,
		)
	}
	fmt.Println(links.Render())

	routes := metrics.NewTable("Routes (host pairs)", "From", "To", "Hops", "Path")
	all := sys.Net.Nodes()
	for _, a := range all {
		for _, b := range all {
			if a == b || a.Router() || b.Router() {
				continue
			}
			path := sys.Net.Route(a.ID(), b.ID())
			if path == nil {
				routes.AddRow(a.Name(), b.Name(), "-", "unreachable")
				continue
			}
			desc := a.Name()
			for _, l := range path {
				desc += " -> " + l.To().Name()
			}
			routes.AddRow(a.Name(), b.Name(), fmt.Sprintf("%d", len(path)), desc)
		}
	}
	fmt.Println(routes.Render())
}
