// qospub is the wall-clock pub/sub tool for the event channel qosserve
// hosts at pubsub/chan: publish a stream, subscribe and count what
// arrives, or dump the channel's live stats.
//
//	qosserve -addr 127.0.0.1:7316 &
//	qospub -mode subscribe -addr 127.0.0.1:7316 -listen 127.0.0.1:0 \
//	       -name sub1 -topic 'camera/**' -prio 16000 -expect 100 &
//	qospub -mode publish -addr 127.0.0.1:7316 -topic camera/front \
//	       -evkey cam0 -prio 16000 -count 100 -hz 300
//	qospub -mode chan-stat -addr 127.0.0.1:7316
//
// Publish counts TRANSIENT admission refusals separately from transport
// errors, so a rate-limited topic is visible at the sender. Subscribe
// runs its own wire server and asks the host to dial back; with -expect
// it exits non-zero unless at least that many events arrived before
// -duration ran out — the CI smoke assertion.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/pubsub"
	"repro/internal/wire"
)

func main() {
	mode := flag.String("mode", "publish", "publish, subscribe, or chan-stat")
	addr := flag.String("addr", "127.0.0.1:7316", "channel host TCP address")
	key := flag.String("key", "pubsub/chan", "channel host object key")
	topic := flag.String("topic", "camera/front", "publish: event topic; subscribe: topic glob")
	evkey := flag.String("evkey", "", "publish: event coalescing key")
	prio := flag.Int("prio", 0, "publish: event priority; subscribe: subscriber band")
	count := flag.Int("count", 100, "publish: number of events")
	hz := flag.Int("hz", 300, "publish: offered rate (0 = as fast as possible)")
	payload := flag.Int("payload", 1024, "publish: event payload bytes")
	name := flag.String("name", "qospub", "subscribe: subscription name")
	listen := flag.String("listen", "127.0.0.1:0", "subscribe: consumer dial-back listen address")
	minPrio := flag.Int("min-prio", 0, "subscribe: minimum event priority")
	outbox := flag.Int("outbox", 64, "subscribe: host-side outbox bound")
	policy := flag.String("policy", "drop-oldest", "subscribe: overflow policy (drop-oldest, drop-newest, coalesce, block)")
	expect := flag.Int("expect", 0, "subscribe: exit non-zero unless this many events arrive (0 = just count)")
	duration := flag.Duration("duration", 10*time.Second, "subscribe: how long to wait")
	timeout := flag.Duration("timeout", 2*time.Second, "per-invocation timeout")
	flag.Parse()

	cli, err := wire.NewClient(wire.ClientConfig{
		Addr:  *addr,
		Bands: []int16{0, wire.EFPriority},
		Name:  "qospub",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qospub: %v\n", err)
		os.Exit(1)
	}
	defer cli.Close()
	opts := wire.CallOptions{Timeout: *timeout}

	switch *mode {
	case "publish":
		publish(cli, *key, *topic, *evkey, int16(*prio), *count, *hz, *payload, opts)
	case "subscribe":
		subscribe(cli, *key, *name, *listen, *topic, int16(*minPrio), int16(*prio),
			*outbox, *policy, *expect, *duration, opts)
	case "chan-stat":
		snap, err := wire.FetchChannelStats(cli, *key, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qospub: stats: %v\n", err)
			os.Exit(1)
		}
		out, _ := json.MarshalIndent(snap, "", "  ")
		fmt.Println(string(out))
	default:
		fmt.Fprintf(os.Stderr, "qospub: unknown mode %q\n", *mode)
		flag.Usage()
		os.Exit(2)
	}
}

// publish sends count events at hz, reporting admission refusals
// (ErrOverload, the token bucket saying no) apart from hard errors.
func publish(cli *wire.Client, key, topic, evkey string, prio int16, count, hz, payload int, opts wire.CallOptions) {
	body := make([]byte, payload)
	for i := range body {
		body[i] = byte(i)
	}
	var tick *time.Ticker
	if hz > 0 {
		tick = time.NewTicker(time.Second / time.Duration(hz))
		defer tick.Stop()
	}
	start := time.Now()
	var sent, refused, failed int
	for i := 0; i < count; i++ {
		if tick != nil {
			<-tick.C
		}
		err := wire.PublishRemote(cli, key, pubsub.Event{
			Topic: topic, Key: evkey, Priority: prio, Payload: body,
		}, opts)
		switch {
		case err == nil:
			sent++
		case errors.Is(err, wire.ErrOverload):
			refused++
		default:
			failed++
			if failed == 1 {
				fmt.Fprintf(os.Stderr, "qospub: publish: %v\n", err)
			}
		}
	}
	fmt.Printf("qospub: published %d, refused %d (admission), failed %d in %v\n",
		sent, refused, failed, time.Since(start).Round(time.Millisecond))
	if sent == 0 {
		os.Exit(1)
	}
}

// subscribe runs a consumer server, registers the subscription with a
// dial-back address, and counts pushes until expect is met or the
// deadline passes.
func subscribe(cli *wire.Client, key, name, listen, topic string, minPrio, prio int16,
	outbox int, policy string, expect int, duration time.Duration, opts wire.CallOptions) {
	pol, err := pubsub.ParsePolicy(policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qospub: %v\n", err)
		os.Exit(2)
	}
	srv, err := wire.NewServer(wire.ServerConfig{Name: "qospub.consumer"})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qospub: consumer: %v\n", err)
		os.Exit(1)
	}
	var got atomic.Int64
	reached := make(chan struct{})
	srv.Register("consumer/push", wire.ConsumerHandler(func(ev pubsub.Event) {
		if n := got.Add(1); expect > 0 && n == int64(expect) {
			close(reached)
		}
	}))
	bound, err := srv.Listen(listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qospub: listen: %v\n", err)
		os.Exit(1)
	}
	defer srv.Shutdown(2 * time.Second)

	err = wire.SubscribeRemote(cli, key, wire.SubscribeSpec{
		Name: name, Addr: bound.String(), ConsumerKey: "consumer/push",
		Topic: topic, MinPriority: minPrio, Priority: prio,
		Outbox: uint32(outbox), Policy: pol,
	}, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qospub: subscribe: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("qospub: subscribed %q (topic %s, band %d) consuming on %s\n", name, topic, prio, bound)
	defer wire.UnsubscribeRemote(cli, key, name, opts)

	deadline := time.NewTimer(duration)
	defer deadline.Stop()
	if expect > 0 {
		select {
		case <-reached:
		case <-deadline.C:
		}
	} else {
		<-deadline.C
	}
	n := got.Load()
	fmt.Printf("qospub: received %d event(s)\n", n)
	if expect > 0 && n < int64(expect) {
		fmt.Fprintf(os.Stderr, "qospub: expected %d event(s), got %d\n", expect, n)
		os.Exit(1)
	}
}
