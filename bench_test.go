// Benchmarks regenerating every table and figure in the paper's
// evaluation section. Each iteration runs the complete experiment on the
// discrete-event substrate at a reduced (but shape-preserving) scale;
// the headline QoS outcomes are attached as custom benchmark metrics so
// `go test -bench` output doubles as a compact reproduction report.
//
// Full paper-scale runs are produced by cmd/qosbench.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

// benchOpt runs experiments at a reduced scale; shapes are stable here
// (the experiments package's tests assert them at similar scales).
func benchOpt(i int) experiments.Options {
	return experiments.Options{Seed: int64(42 + i), Duration: 20 * time.Second}
}

func BenchmarkFigure2PriorityPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure2(experiments.Options{Seed: int64(42 + i)})
		if len(r.Hops) != 3 {
			b.Fatalf("hops = %d", len(r.Hops))
		}
	}
}

func BenchmarkFigure4Control(b *testing.B) {
	var flat, congested float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure4(benchOpt(i))
		flat += r.NoTraffic.Sum1.Mean
		congested += r.WithTraffic.Sum1.Mean
	}
	b.ReportMetric(flat/float64(b.N)*1e3, "ms-uncongested")
	b.ReportMetric(congested/float64(b.N)*1e3, "ms-congested")
}

func BenchmarkFigure5ThreadPriority(b *testing.B) {
	var high, low float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure5(benchOpt(i))
		high += r.NoTraffic.Sum1.Mean
		low += r.NoTraffic.Sum2.Mean
	}
	b.ReportMetric(high/float64(b.N)*1e3, "ms-highprio")
	b.ReportMetric(low/float64(b.N)*1e3, "ms-lowprio")
}

func BenchmarkFigure6PriorityDiffServ(b *testing.B) {
	var s1, s2 float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure6(benchOpt(i))
		s1 += r.Combined.Sum1.Mean
		s2 += r.Combined.Sum2.Mean
	}
	b.ReportMetric(s1/float64(b.N)*1e3, "ms-sender1")
	b.ReportMetric(s2/float64(b.N)*1e3, "ms-sender2")
}

func BenchmarkFigure7Delivery(b *testing.B) {
	opt := experiments.Options{Seed: 42, Duration: 60 * time.Second}
	var noAdapt, partialFilter, full float64
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		r := experiments.RunFigure7(opt)
		noAdapt += r.NoAdaptation.DeliveredUnderLoad
		partialFilter += r.PartialWithFilter.DeliveredUnderLoad
		full += r.FullReservation.DeliveredUnderLoad
	}
	b.ReportMetric(noAdapt/float64(b.N)*100, "%delivered-noadapt")
	b.ReportMetric(partialFilter/float64(b.N)*100, "%delivered-partial+filter")
	b.ReportMetric(full/float64(b.N)*100, "%delivered-full")
}

func BenchmarkTable1NetworkReservation(b *testing.B) {
	opt := experiments.Options{Seed: 42, Duration: 60 * time.Second}
	var worst, best float64
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		r := experiments.RunTable1(opt)
		worst += r.Cases[0].DeliveredUnderLoad // no adaptation
		best += r.Cases[5].DeliveredUnderLoad  // full + filtering
	}
	b.ReportMetric(worst/float64(b.N)*100, "%delivered-unmanaged")
	b.ReportMetric(best/float64(b.N)*100, "%delivered-managed")
}

func BenchmarkTable2CPUReservation(b *testing.B) {
	opt := experiments.Options{Seed: 42, Duration: 60 * time.Second} // 10 images
	var loadInflation, resvInflation float64
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		r := experiments.RunTable2(opt)
		kirsch := r.Rows[0]
		loadInflation += kirsch.Load.Mean / kirsch.NoLoad.Mean
		resvInflation += kirsch.Reserve.Mean / kirsch.NoLoad.Mean
	}
	b.ReportMetric(loadInflation/float64(b.N), "x-kirsch-under-load")
	b.ReportMetric(resvInflation/float64(b.N), "x-kirsch-with-reserve")
}
